//! Query evaluation (§4.2–§4.3).
//!
//! The evaluator computes, for an expression and an object, the set of
//! substitutions under which the object satisfies the expression:
//!
//! * an **atomic** expression `α t` is satisfied by an atomic object `o`
//!   when `o α tσ` holds; the null atom satisfies nothing (§5.2); `= X`
//!   with `X` unbound *binds* `X` to the object (including aggregate
//!   objects — tuples and sets, §4.1's generalisation);
//! * a **tuple** expression is a conjunction over its fields, threaded left
//!   to right; an attribute position holding an *unbound higher-order
//!   variable enumerates the tuple's attribute names* (§4.3) — this single
//!   rule is what lets data range over metadata;
//! * a **set** expression `(exp)` is satisfied when some element satisfies
//!   `exp`; answers union over elements;
//! * `¬exp` succeeds when `exp` has no satisfying extension
//!   (negation-as-failure; unbound variables inside the negation are
//!   existential).
//!
//! ## Access paths
//!
//! The evaluator tracks *where* in the universe it is walking
//! ([`Loc`]): when a set expression scans a stored relation and a field
//! provides a ground equality or range probe, the storage layer's index is
//! consulted for candidates instead of scanning every element. Candidates
//! are always re-checked against the full expression, so index probes only
//! have to be *supersets* — which is what makes mixed int/float data safe.
//! [`EvalOptions`] can disable this (and conjunct reordering) for the
//! naive reference mode used in differential tests and ablation benches.

use crate::arith::try_eval_term;
use crate::delta::DeltaTable;
use crate::error::{EvalError, EvalResult};
use crate::plan;
use crate::subst::{AnswerSet, Subst};
use idl_lang::{AttrTerm, Expr, Field, RelOp, Request, Term};
use idl_object::{Atom, Name, SetObj, Value};
use idl_storage::index::Index;
use idl_storage::{IndexKind, Store};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// Evaluation options (planner/index toggles, result limits, fixpoint
/// parallelism).
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Consult storage indexes when scanning stored relations.
    pub use_indexes: bool,
    /// Reorder tuple-expression conjuncts before evaluation.
    pub reorder: bool,
    /// Compile expressions to the physical plan IR before execution
    /// ([`crate::physical`]). `false` keeps the tree-walking interpreter
    /// as the reference mode for differential testing.
    pub compile: bool,
    /// Abort with [`EvalError::TooManyResults`] beyond this many
    /// substitutions in any intermediate result.
    pub max_results: Option<usize>,
    /// Worker threads for intra-stratum fixpoint evaluation. `1` keeps the
    /// sequential path; `0` is treated as `1`. Query evaluation itself is
    /// unaffected — only `RuleEngine` materialisation fans out.
    pub threads: usize,
    /// Semi-naive (delta-driven) fixpoint scheduling: skip rules whose
    /// body predicates saw no delta and join new facts against the full
    /// store instead of re-deriving everything each iteration. `false`
    /// keeps naive full re-evaluation as the reference mode for
    /// differential testing. Query evaluation itself is unaffected.
    pub semi_naive: bool,
    /// Write-path incremental view maintenance: updates drive their own
    /// deltas into the maintained views instead of marking the world
    /// stale for a full re-derivation ([`crate::maintain`]). `false`
    /// keeps refresh-the-world as the reference mode for differential
    /// testing. Query evaluation itself is unaffected.
    pub maintain: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            use_indexes: true,
            reorder: true,
            compile: default_compile(),
            max_results: None,
            threads: default_threads(),
            semi_naive: default_semi_naive(),
            maintain: default_maintain(),
        }
    }
}

impl EvalOptions {
    /// The naive reference configuration: no indexes, no reordering, no
    /// plan compilation (pure tree walk), sequential fixpoint.
    pub fn naive() -> Self {
        EvalOptions {
            use_indexes: false,
            reorder: false,
            compile: false,
            max_results: None,
            threads: 1,
            semi_naive: false,
            maintain: false,
        }
    }

    /// This configuration with a fixed fixpoint worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This configuration with plan compilation switched on or off.
    pub fn with_compile(mut self, compile: bool) -> Self {
        self.compile = compile;
        self
    }

    /// This configuration with semi-naive fixpoint scheduling switched on
    /// or off.
    pub fn with_semi_naive(mut self, semi_naive: bool) -> Self {
        self.semi_naive = semi_naive;
        self
    }

    /// This configuration with write-path view maintenance switched on or
    /// off.
    pub fn with_maintain(mut self, maintain: bool) -> Self {
        self.maintain = maintain;
        self
    }
}

/// The default fixpoint worker count: the `IDL_TEST_THREADS` environment
/// variable when set (how CI pins the thread matrix), otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IDL_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The default for [`EvalOptions::compile`]: `true`, unless the
/// `IDL_NO_COMPILE` environment variable is set to something other than
/// `""`/`0` (how CI exercises the tree-walk reference interpreter).
pub fn default_compile() -> bool {
    match std::env::var("IDL_NO_COMPILE") {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// The default for [`EvalOptions::semi_naive`]: `true`, unless the
/// `IDL_NAIVE_FIXPOINT` environment variable is set to something other
/// than `""`/`0` (how CI pins the naive reference fixpoint).
pub fn default_semi_naive() -> bool {
    match std::env::var("IDL_NAIVE_FIXPOINT") {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// The default for [`EvalOptions::maintain`]: `true`, unless the
/// `IDL_NO_MAINTENANCE` environment variable is set to something other
/// than `""`/`0` (how CI pins the refresh-the-world reference mode).
pub fn default_maintain() -> bool {
    match std::env::var("IDL_NO_MAINTENANCE") {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// Where in the stored universe the walk currently is (for index probes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Loc {
    /// At the universe root (attributes are database names).
    Root,
    /// Inside a database (attributes are relation names).
    Db(Name),
    /// At a stored relation — the probe point.
    Rel(Name, Name),
    /// Anywhere else (no index support).
    Off,
}

impl Loc {
    pub(crate) fn descend(&self, attr: &Name) -> Loc {
        match self {
            Loc::Root => Loc::Db(attr.clone()),
            Loc::Db(db) => Loc::Rel(db.clone(), attr.clone()),
            Loc::Rel(..) | Loc::Off => Loc::Off,
        }
    }
}

/// The query evaluator, borrowing the store it reads.
pub struct Evaluator<'a> {
    pub(crate) store: &'a Store,
    pub(crate) opts: EvalOptions,
    /// Previous-iteration delta relations for semi-naive fixpoint tasks:
    /// [`crate::physical::PhysOp::DeltaScan`] reads these instead of the
    /// stored relation. `None` outside the fixpoint (a delta scan then
    /// degrades to the full scan, which is always a sound superset).
    pub(crate) delta: Option<&'a DeltaTable>,
    /// `(shard, shard_count)` slice of each delta relation this evaluator
    /// sees — how one rule's delta work is split across workers.
    pub(crate) chunk: (usize, usize),
    /// Per-evaluator index memo: the store's index cache sits behind a
    /// global mutex and re-checks journal staleness per call, which
    /// dominates probe-heavy fixpoint iterations when several workers
    /// hammer it. The store is borrowed immutably for this evaluator's
    /// whole lifetime, so a fetched index can never go stale here.
    index_memo: RefCell<HashMap<IndexMemoKey, Arc<Index>>>,
}

/// `(db, relation, attribute, kind)` — identifies one memoized index.
type IndexMemoKey = (Name, Name, Name, IndexKind);

impl<'a> Evaluator<'a> {
    /// Evaluator with the given options.
    pub fn new(store: &'a Store, opts: EvalOptions) -> Self {
        Evaluator {
            store,
            opts,
            delta: None,
            chunk: (0, 1),
            index_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Evaluator for one semi-naive fixpoint task: delta scans read
    /// `delta`, sliced to the `chunk = (shard, shard_count)` shard.
    pub(crate) fn with_delta(
        store: &'a Store,
        opts: EvalOptions,
        delta: &'a DeltaTable,
        chunk: (usize, usize),
    ) -> Self {
        let mut ev = Evaluator::new(store, opts);
        ev.delta = Some(delta);
        ev.chunk = (chunk.0, chunk.1.max(1));
        ev
    }

    /// A stored index, memoised for this evaluator's lifetime (see
    /// `index_memo`).
    pub(crate) fn fetch_index(
        &self,
        db: &Name,
        rel: &Name,
        attr: &Name,
        kind: IndexKind,
    ) -> EvalResult<Arc<Index>> {
        let key = (db.clone(), rel.clone(), attr.clone(), kind);
        if let Some(idx) = self.index_memo.borrow().get(&key) {
            return Ok(Arc::clone(idx));
        }
        let idx = self.store.index(db.as_str(), rel.as_str(), attr.as_str(), kind)?;
        self.index_memo.borrow_mut().insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    /// Evaluator with default options (planner + indexes on).
    pub fn with_defaults(store: &'a Store) -> Self {
        Self::new(store, EvalOptions::default())
    }

    /// The store this evaluator reads.
    pub fn store(&self) -> &Store {
        self.store
    }

    /// The options in effect.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// Evaluates a pure-query request: the answer is the set of grounding
    /// substitutions projected onto the request's named variables (§4.2).
    pub fn query(&self, request: &Request) -> EvalResult<AnswerSet> {
        if !request.is_pure_query() {
            return Err(EvalError::Malformed(
                "request contains update expressions; use the update runner".into(),
            ));
        }
        let substs = self.eval_items(&request.items, vec![Subst::new()])?;
        let vars = request.vars();
        let named: std::collections::BTreeSet<_> =
            vars.into_iter().filter(|v| !v.is_gensym()).collect();
        Ok(substs.into_iter().map(|s| s.project(&named)).collect())
    }

    /// Threads a list of universe-level conjuncts over a set of seed
    /// substitutions, left to right.
    ///
    /// With [`EvalOptions::compile`] set this compiles the items to the
    /// physical plan IR and executes that (an uncached compile — callers
    /// with a [`crate::compile::PlanCache`] should compile through it and
    /// call [`Evaluator::eval_compiled`] directly); otherwise it
    /// tree-walks the AST, re-planning per item as the reference
    /// interpreter always has.
    pub fn eval_items(&self, items: &[Expr], seed: Vec<Subst>) -> EvalResult<Vec<Subst>> {
        if self.opts.compile {
            let plan = crate::compile::compile_items(items, self.opts)?;
            return self.eval_compiled(&plan, seed);
        }
        let mut current = seed;
        for item in items {
            let item = if self.opts.reorder { plan::plan_query_expr(item) } else { item.clone() };
            let mut next = Vec::new();
            for s in &current {
                self.satisfy_at(self.store.universe(), &item, s, &Loc::Root, &mut next)?;
                self.check_limit(next.len())?;
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Public single-expression satisfaction on an arbitrary object
    /// (no index support — location unknown).
    pub fn satisfy(
        &self,
        obj: &Value,
        expr: &Expr,
        subst: &Subst,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        self.satisfy_at(obj, expr, subst, &Loc::Off, out)
    }

    /// Boolean satisfaction check.
    pub fn holds(&self, obj: &Value, expr: &Expr, subst: &Subst) -> EvalResult<bool> {
        let mut out = Vec::new();
        self.satisfy_at(obj, expr, subst, &Loc::Off, &mut out)?;
        Ok(!out.is_empty())
    }

    pub(crate) fn check_limit(&self, n: usize) -> EvalResult<()> {
        match self.opts.max_results {
            Some(limit) if n > limit => Err(EvalError::TooManyResults(limit)),
            _ => Ok(()),
        }
    }

    fn satisfy_at(
        &self,
        obj: &Value,
        expr: &Expr,
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        match expr {
            Expr::Epsilon => {
                out.push(subst.clone());
                Ok(())
            }
            Expr::Not(inner) => {
                let mut tmp = Vec::new();
                self.satisfy_at(obj, inner, subst, loc, &mut tmp)?;
                if tmp.is_empty() {
                    out.push(subst.clone());
                }
                Ok(())
            }
            Expr::Atomic(op, term) => self.atomic(obj, *op, term, subst, out),
            Expr::Constraint(a, op, b) => self.constraint(a, *op, b, subst, out),
            Expr::Tuple(fields) => {
                let Some(t) = obj.as_tuple() else { return Ok(()) };
                let _ = t;
                self.tuple_fields(obj, fields, subst, loc, out)
            }
            Expr::Set(inner) => {
                let Some(s) = obj.as_set() else { return Ok(()) };
                self.set_scan(s, inner, subst, loc, out)
            }
            Expr::AtomicUpdate(..) | Expr::SetUpdate(..) => {
                Err(EvalError::Malformed("update expression in query position".into()))
            }
        }
    }

    // ---- atomic ---------------------------------------------------------

    pub(crate) fn atomic(
        &self,
        obj: &Value,
        op: RelOp,
        term: &Term,
        subst: &Subst,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        // The null atom satisfies no atomic expression (§5.2).
        if obj.is_null() {
            return Ok(());
        }
        match try_eval_term(term, subst) {
            Ok(val) => {
                if compare_query(obj, op, &val) {
                    out.push(subst.clone());
                }
                Ok(())
            }
            Err(unbound) => {
                if op == RelOp::Eq {
                    if let Term::Var(v) = term {
                        // `= X` with X unbound: bind X to the object —
                        // including aggregate objects (§4.1).
                        if let Some(s2) = subst.bind(v, obj) {
                            out.push(s2);
                        }
                        return Ok(());
                    }
                }
                Err(EvalError::Uninstantiated(unbound))
            }
        }
    }

    pub(crate) fn constraint(
        &self,
        a: &Term,
        op: RelOp,
        b: &Term,
        subst: &Subst,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        match (try_eval_term(a, subst), try_eval_term(b, subst)) {
            (Ok(x), Ok(y)) => {
                if compare_query(&x, op, &y) {
                    out.push(subst.clone());
                }
                Ok(())
            }
            (Err(_), Ok(y)) if op == RelOp::Eq => {
                if let Term::Var(v) = a {
                    if let Some(s2) = subst.bind(v, &y) {
                        out.push(s2);
                    }
                    return Ok(());
                }
                Err(EvalError::Uninstantiated(first_unbound(a, subst).unwrap()))
            }
            (Ok(x), Err(_)) if op == RelOp::Eq => {
                if let Term::Var(v) = b {
                    if let Some(s2) = subst.bind(v, &x) {
                        out.push(s2);
                    }
                    return Ok(());
                }
                Err(EvalError::Uninstantiated(first_unbound(b, subst).unwrap()))
            }
            (Err(v), _) | (_, Err(v)) => Err(EvalError::Uninstantiated(v)),
        }
    }

    // ---- tuple ----------------------------------------------------------

    fn tuple_fields(
        &self,
        obj: &Value,
        fields: &[Field],
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        self.tuple_fields_rec(obj, fields, 0, subst, loc, out)
    }

    fn tuple_fields_rec(
        &self,
        obj: &Value,
        fields: &[Field],
        i: usize,
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        if i == fields.len() {
            out.push(subst.clone());
            return Ok(());
        }
        let field = &fields[i];
        if field.sign.is_some() {
            return Err(EvalError::Malformed("update field in query position".into()));
        }
        let t = obj.as_tuple().expect("caller checked tuple kind");
        match &field.attr {
            AttrTerm::Const(name) => {
                let Some(child) = t.get(name.as_str()) else { return Ok(()) };
                let child_loc = loc.descend(name);
                let mut exts = Vec::new();
                self.satisfy_at(child, &field.expr, subst, &child_loc, &mut exts)?;
                for s2 in exts {
                    self.tuple_fields_rec(obj, fields, i + 1, &s2, loc, out)?;
                    self.check_limit(out.len())?;
                }
                Ok(())
            }
            AttrTerm::Var(v) => {
                if let Some(bound) = subst.get(v) {
                    // Bound higher-order variable: must name an attribute.
                    let Value::Atom(Atom::Str(name)) = bound else {
                        return Ok(()); // non-name binding satisfies nothing
                    };
                    let name = name.clone();
                    let Some(child) = t.get(name.as_str()) else { return Ok(()) };
                    let child_loc = loc.descend(&name);
                    let mut exts = Vec::new();
                    self.satisfy_at(child, &field.expr, subst, &child_loc, &mut exts)?;
                    for s2 in exts {
                        self.tuple_fields_rec(obj, fields, i + 1, &s2, loc, out)?;
                        self.check_limit(out.len())?;
                    }
                    Ok(())
                } else {
                    // §4.3: the higher-order variable ranges over the
                    // tuple's attribute names.
                    for (name, child) in t.iter() {
                        let Some(s1) = subst.bind(v, &Value::str(name.as_str())) else {
                            continue;
                        };
                        let child_loc = loc.descend(name);
                        let mut exts = Vec::new();
                        self.satisfy_at(child, &field.expr, &s1, &child_loc, &mut exts)?;
                        for s2 in exts {
                            self.tuple_fields_rec(obj, fields, i + 1, &s2, loc, out)?;
                            self.check_limit(out.len())?;
                        }
                    }
                    Ok(())
                }
            }
        }
    }

    // ---- set ------------------------------------------------------------

    fn set_scan(
        &self,
        set: &SetObj,
        inner: &Expr,
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        // Index probe when scanning a stored relation. Candidates are
        // borrowed from the (Arc-held) index — no tuple cloning.
        if self.opts.use_indexes {
            if let Loc::Rel(db, rel) = loc {
                if let Expr::Tuple(fields) = inner {
                    if let Some(spec) = self.probe_spec(db, rel, fields, subst)? {
                        match spec {
                            ProbeSpec::Eq { index, keys } => {
                                for key in &keys {
                                    for cand in index.lookup_eq(key) {
                                        self.satisfy_at(cand, inner, subst, &Loc::Off, out)?;
                                        self.check_limit(out.len())?;
                                    }
                                }
                            }
                            ProbeSpec::Range { index, bounds } => {
                                for (lo, hi) in &bounds {
                                    if let Some(hits) =
                                        index.lookup_range(bound_ref(lo), bound_ref(hi))
                                    {
                                        for cand in hits {
                                            self.satisfy_at(cand, inner, subst, &Loc::Off, out)?;
                                            self.check_limit(out.len())?;
                                        }
                                    }
                                }
                            }
                        }
                        return Ok(());
                    }
                }
            }
        }
        for elem in set.iter() {
            self.satisfy_at(elem, inner, subst, &Loc::Off, out)?;
            self.check_limit(out.len())?;
        }
        Ok(())
    }

    /// Chooses an index probe for the given relation-scan fields, returning
    /// the access path (always a *superset* of the matching tuples — every
    /// candidate is re-checked against the full expression) or `None` when
    /// no probeable field exists.
    fn probe_spec(
        &self,
        db: &Name,
        rel: &Name,
        fields: &[Field],
        subst: &Subst,
    ) -> EvalResult<Option<ProbeSpec>> {
        // Equality probe first.
        for f in fields {
            if f.sign.is_some() {
                continue;
            }
            let AttrTerm::Const(attr) = &f.attr else { continue };
            let Expr::Atomic(RelOp::Eq, term) = &f.expr else { continue };
            let Ok(key) = try_eval_term(term, subst) else { continue };
            let index = self.fetch_index(db, rel, attr, IndexKind::Hash)?;
            let mut keys = vec![key];
            if let Some(twin) = numeric_twin(&keys[0]) {
                keys.push(twin);
            }
            return Ok(Some(ProbeSpec::Eq { index, keys }));
        }
        // Range probe.
        for f in fields {
            if f.sign.is_some() {
                continue;
            }
            let AttrTerm::Const(attr) = &f.attr else { continue };
            let Expr::Atomic(op, term) = &f.expr else { continue };
            if !matches!(op, RelOp::Lt | RelOp::Le | RelOp::Gt | RelOp::Ge) {
                continue;
            }
            let Ok(key) = try_eval_term(term, subst) else { continue };
            let index = self.fetch_index(db, rel, attr, IndexKind::BTree)?;
            return Ok(Some(ProbeSpec::Range { index, bounds: range_bounds(*op, &key) }));
        }
        Ok(None)
    }
}

/// A chosen index access path.
enum ProbeSpec {
    /// Point lookups for each (coercion-widened) key.
    Eq {
        /// The hash index, kept alive while candidates are borrowed.
        index: std::sync::Arc<idl_storage::index::Index>,
        /// The probe keys (value + numeric twin).
        keys: Vec<Value>,
    },
    /// Range scans over (widened) bounds, one per candidate key type.
    Range {
        /// The B-tree index.
        index: std::sync::Arc<idl_storage::index::Index>,
        /// Bound pairs.
        bounds: Vec<(Bound<Value>, Bound<Value>)>,
    },
}

pub(crate) fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn first_unbound(term: &Term, subst: &Subst) -> Option<idl_lang::Var> {
    match term {
        Term::Const(_) => None,
        Term::Var(v) => {
            if subst.is_bound(v) {
                None
            } else {
                Some(v.clone())
            }
        }
        Term::Arith(_, a, b) => first_unbound(a, subst).or_else(|| first_unbound(b, subst)),
    }
}

/// Query-level comparison between two objects (§4.2 + §4.1's aggregate
/// variables): atoms compare via [`Atom::compare`] (numeric coercion, null
/// incomparable); aggregates support only `=` / `!=`, structurally.
pub fn compare_query(obj: &Value, op: RelOp, val: &Value) -> bool {
    match (obj, val) {
        (Value::Atom(a), Value::Atom(b)) => match a.compare(b) {
            Some(ord) => op.matches(ord),
            None => false,
        },
        _ => match op {
            RelOp::Eq => obj == val,
            RelOp::Ne => obj != val,
            _ => false,
        },
    }
}

/// The structurally-equal "numeric twin" of an atom: `50 ↔ 50.0`. Used to
/// widen index probes so structural indexes serve numeric query equality.
pub fn numeric_twin(v: &Value) -> Option<Value> {
    match v.as_atom()? {
        Atom::Int(i) => Some(Value::float(*i as f64)),
        Atom::Float(f) => {
            let x = f.get();
            if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 {
                Some(Value::int(x as i64))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Superset range bounds for an index probe: one (lower, upper) pair per
/// key type that could satisfy `attr op key`. Bounds are widened to
/// inclusive where exactness is fiddly — candidates are re-checked.
pub(crate) fn range_bounds(op: RelOp, key: &Value) -> Vec<(Bound<Value>, Bound<Value>)> {
    use Bound::*;
    let Some(atom) = key.as_atom() else { return vec![] };
    match atom {
        Atom::Int(_) | Atom::Float(_) => {
            let x = atom.as_numeric().unwrap();
            let mut out = Vec::new();
            // Int-side (widened to Included of floor/ceil).
            let (ilo, ihi): (Bound<Value>, Bound<Value>) = match op {
                RelOp::Gt | RelOp::Ge => (Included(Value::int(x.floor() as i64)), Unbounded),
                RelOp::Lt | RelOp::Le => (Unbounded, Included(Value::int(x.ceil() as i64))),
                _ => return vec![],
            };
            out.push((ilo, ihi));
            // Float-side.
            let (flo, fhi): (Bound<Value>, Bound<Value>) = match op {
                RelOp::Gt | RelOp::Ge => (Included(Value::float(x)), Unbounded),
                RelOp::Lt | RelOp::Le => (Unbounded, Included(Value::float(x))),
                _ => unreachable!(),
            };
            out.push((flo, fhi));
            out
        }
        _ => {
            let v = key.clone();
            let pair = match op {
                RelOp::Gt => (Excluded(v), Unbounded),
                RelOp::Ge => (Included(v), Unbounded),
                RelOp::Lt => (Unbounded, Excluded(v)),
                RelOp::Le => (Unbounded, Included(v)),
                _ => return vec![],
            };
            vec![pair]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::parse_statement;
    use idl_lang::Statement;
    use idl_object::universe::stock_universe;

    fn store() -> Store {
        let quotes = vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
            ("3/5/85", "hp", 61.0),
            ("3/5/85", "ibm", 210.0),
        ];
        Store::from_universe(stock_universe(quotes)).unwrap()
    }

    fn ask(store: &Store, src: &str) -> AnswerSet {
        let Statement::Request(req) = parse_statement(src).unwrap() else {
            panic!("not a request: {src}")
        };
        Evaluator::with_defaults(store).query(&req).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    fn ask_naive(store: &Store, src: &str) -> AnswerSet {
        let Statement::Request(req) = parse_statement(src).unwrap() else {
            panic!("not a request: {src}")
        };
        Evaluator::new(store, EvalOptions::naive())
            .query(&req)
            .unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn ground_boolean_queries() {
        let s = store();
        assert!(ask(&s, "?.euter.r(.stkCode=hp, .clsPrice>60)").is_true());
        assert!(!ask(&s, "?.euter.r(.stkCode=hp, .clsPrice>100)").is_true());
        // same intention on the other two schemata (§4.3 closing example)
        assert!(ask(&s, "?.chwab.r(.hp>60)").is_true());
        assert!(ask(&s, "?.ource.hp(.clsPrice>60)").is_true());
    }

    #[test]
    fn join_on_shared_variable() {
        let s = store();
        // dates where hp>60 and ibm>150
        let a = ask(
            &s,
            "?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
        );
        let dates = a.column("D");
        assert_eq!(dates.len(), 2);
    }

    #[test]
    fn negation_alltime_high() {
        let s = store();
        let a = ask(
            &s,
            "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp,.clsPrice>P)",
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a.column("P"), vec![Value::float(62.0)]);
    }

    #[test]
    fn higher_order_any_stock_above_200() {
        let s = store();
        // euter: data; chwab: attributes; ource: relations
        let a = ask(&s, "?.euter.r(.stkCode=S, .clsPrice>200)");
        assert_eq!(a.column("S"), vec![Value::str("ibm")]);
        let a = ask(&s, "?.chwab.r(.S>200)");
        assert_eq!(a.column("S"), vec![Value::str("ibm")]);
        let a = ask(&s, "?.ource.S(.clsPrice>200)");
        assert_eq!(a.column("S"), vec![Value::str("ibm")]);
    }

    #[test]
    fn metadata_browsing() {
        let s = store();
        // database names
        let a = ask(&s, "?.X.Y");
        let dbs = a.column("X");
        assert_eq!(dbs.len(), 3);
        // relations in ource = stock names
        let a = ask(&s, "?.ource.Y");
        assert_eq!(a.column("Y"), vec![Value::str("hp"), Value::str("ibm")]);
        // databases containing a relation named hp
        let a = ask(&s, "?.X.hp");
        assert_eq!(a.column("X"), vec![Value::str("ource")]);
        // database/relation containing attribute stkCode
        let a = ask(&s, "?.X.Y(.stkCode)");
        assert_eq!(a.column("X"), vec![Value::str("euter")]);
        assert_eq!(a.column("Y"), vec![Value::str("r")]);
    }

    #[test]
    fn constraint_filter() {
        let s = store();
        let a = ask(&s, "?.X.Y, X = ource");
        assert_eq!(a.column("X"), vec![Value::str("ource")]);
        assert_eq!(a.column("Y").len(), 2);
    }

    #[test]
    fn relations_in_all_databases() {
        let s = store();
        // ?.euter.Y, .chwab.Y, .ource.Y — relation names present everywhere
        let a = ask(&s, "?.euter.Y, .chwab.Y, .ource.Y");
        assert!(a.is_empty(), "no relation name occurs in all three (r vs stocks)");
        // but hp occurs in ource only; r occurs in euter and chwab
        let a = ask(&s, "?.euter.Y, .chwab.Y");
        assert_eq!(a.column("Y"), vec![Value::str("r")]);
    }

    #[test]
    fn cross_database_join_on_price() {
        let s = store();
        // stocks in ource and chwab with the same closing price (same date)
        let a = ask(&s, "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)");
        // every (stock, date) pair matches (same data in both schemata)
        assert_eq!(a.column("S").len(), 2);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn aggregate_variable_binds_whole_relation() {
        let s = store();
        let a = ask(&s, "?.euter.r=R");
        assert_eq!(a.len(), 1);
        let bound = &a.column("R")[0];
        assert_eq!(bound.as_set().unwrap().len(), 6);
    }

    #[test]
    fn planner_equals_naive() {
        let s = store();
        for q in [
            "?.euter.r(.stkCode=hp, .clsPrice>60)",
            "?.euter.r(.clsPrice>60, .stkCode=S)",
            "?.chwab.r(.S>200)",
            "?.ource.S(.clsPrice>100)",
            "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp,.clsPrice>P)",
            "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
            "?.X.Y(.stkCode)",
        ] {
            assert_eq!(ask(&s, q), ask_naive(&s, q), "planner/naive mismatch on {q}");
        }
    }

    #[test]
    fn index_probe_numeric_coercion() {
        let s = store();
        // prices stored as floats; integer literal must still match via twin
        let a = ask(&s, "?.euter.r(.clsPrice=50, .stkCode=S)");
        assert_eq!(a.column("S"), vec![Value::str("hp")]);
    }

    #[test]
    fn uninstantiated_comparison_errors() {
        let s = store();
        let Statement::Request(req) = parse_statement("?.euter.r(.clsPrice>P)").unwrap() else {
            panic!()
        };
        let err = Evaluator::with_defaults(&s).query(&req).unwrap_err();
        assert!(matches!(err, EvalError::Uninstantiated(_)));
    }

    #[test]
    fn result_limit() {
        let s = store();
        let Statement::Request(req) = parse_statement("?.euter.r(.date=D,.stkCode=S)").unwrap()
        else {
            panic!()
        };
        let opts = EvalOptions { max_results: Some(2), ..Default::default() };
        let err = Evaluator::new(&s, opts).query(&req).unwrap_err();
        assert!(matches!(err, EvalError::TooManyResults(2)));
    }

    #[test]
    fn null_never_satisfies() {
        let mut s = Store::new();
        s.insert("db", "r", idl_object::tuple! { a: Value::null(), b: 1i64 }).unwrap();
        assert!(!ask(&s, "?.db.r(.a=null)").is_true(), "even = null fails on null");
        assert!(!ask(&s, "?.db.r(.a=X)").is_true(), "binding through null fails");
        assert!(ask(&s, "?.db.r(.b=1)").is_true());
    }

    #[test]
    fn repeated_attribute_conjuncts() {
        let s = store();
        // .clsPrice>60, .clsPrice<100 — two constraints on one attribute
        let a = ask(&s, "?.euter.r(.stkCode=S, .clsPrice>60, .clsPrice<100)");
        assert_eq!(a.column("S"), vec![Value::str("hp")]);
    }

    #[test]
    fn fresh_variables_hidden_from_answers() {
        let s = store();
        let a = ask(&s, "?.euter.r(.stkCode=hp, .clsPrice=_)");
        assert_eq!(a.len(), 1, "anonymous variables are projected away");
    }

    #[test]
    fn user_variable_named_like_gensym_survives() {
        // Regression: `_G1` used to collide with the parser's fresh-variable
        // names and was silently projected out of the answers. Gensyms now
        // carry an unparseable marker, so this is an ordinary variable.
        let s = store();
        let a = ask(&s, "?.euter.r(.stkCode=_G1, .clsPrice>200)");
        assert_eq!(a.column("_G1"), vec![Value::str("ibm")]);
        // and it coexists with a real anonymous variable
        let a = ask(&s, "?.euter.r(.stkCode=_G1, .clsPrice=_)");
        assert_eq!(a.column("_G1").len(), 2, "hp and ibm, _ projected away");
    }
}
