//! Update-expression evaluation (§5).
//!
//! An update expression is *"a decree that proclaims the truth hence
//! forth"*: `+exp` makes `exp` true, `-exp` makes it false. The §5.2
//! evaluation semantics implemented here:
//!
//! * **atomic plus** `+=c` replaces the atom with `c`; **atomic minus**
//!   `-=c` replaces it with the null atom if it currently satisfies `=c`
//!   (an unbound variable acts as a wildcard: `-=X` nulls any non-null
//!   atom — this is what lets `delStk` run with missing parameters);
//! * **tuple plus** `+.a exp` creates/overwrites attribute `a` with the
//!   materialisation of `exp` on a fresh empty object; **tuple minus**
//!   `-.a exp` deletes the attribute when its object satisfies `exp` —
//!   on a *single tuple* if reached through one, which is legal because
//!   sets are heterogeneous (§5.2's chwab example);
//! * **set plus** `+(exp)` inserts the materialisation of `exp`; **set
//!   minus** `-(exp)` deletes every element satisfying `exp`;
//! * **query-dependent updates**: unsigned fields of a tuple expression in
//!   update context act as filters/binders — elements matching the query
//!   parts receive the update parts (the paper's
//!   `?.chwab.r(.date=3/3/85, -.hp=C)` and `delStk`'s `.chwab.r(.S-=X,
//!   .date=D)`);
//! * the **empty object** doctrine: *"all update expressions are valid on
//!   an empty object"* — navigating a `+`-carrying expression through a
//!   missing attribute creates the attribute with an empty object of the
//!   category the expression expects (which is also how inserting into a
//!   brand-new relation works).
//!
//! Kind mismatches (e.g. set plus on an atom) are reported as errors — the
//! paper says results are "undefined"; we define them as failures.

use crate::arith::eval_term;
use crate::error::{EvalError, EvalResult};
use crate::query::{EvalOptions, Evaluator};
use crate::subst::Subst;
use idl_lang::{AttrTerm, Expr, Field, RelOp, Sign, Term};
use idl_object::{Kind, Name, Value};
use idl_storage::Store;
use serde::{Deserialize, Serialize};

/// Mutation counters returned by update application.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Set elements inserted.
    pub inserted: usize,
    /// Set elements / tuple attributes deleted.
    pub deleted: usize,
    /// Atoms overwritten or nulled, attributes created/replaced.
    pub modified: usize,
}

impl UpdateStats {
    /// Total mutations.
    pub fn total(&self) -> usize {
        self.inserted + self.deleted + self.modified
    }

    /// Accumulates another counter.
    pub fn merge(&mut self, other: UpdateStats) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        self.modified += other.modified;
    }
}

/// Applies one update item (a universe-level expression containing update
/// forms) under a substitution.
pub fn apply_update(universe: &mut Value, expr: &Expr, subst: &Subst) -> EvalResult<UpdateStats> {
    let mut stats = UpdateStats::default();
    apply(universe, expr, subst, &mut stats)?;
    Ok(stats)
}

/// Plain (store-less, index-less) satisfaction used for update conditions.
fn satisfy_plain(obj: &Value, expr: &Expr, subst: &Subst) -> EvalResult<Vec<Subst>> {
    let store = Store::new();
    let ev = Evaluator::new(&store, EvalOptions::naive());
    let mut out = Vec::new();
    ev.satisfy(obj, expr, subst, &mut out)?;
    out.sort();
    out.dedup();
    Ok(out)
}

fn holds_plain(obj: &Value, expr: &Expr, subst: &Subst) -> EvalResult<bool> {
    Ok(!satisfy_plain(obj, expr, subst)?.is_empty())
}

/// Whether the expression contains a make-true (`+`) form anywhere.
fn has_plus(e: &Expr) -> bool {
    match e {
        Expr::AtomicUpdate(Sign::Plus, _) | Expr::SetUpdate(Sign::Plus, _) => true,
        Expr::AtomicUpdate(Sign::Minus, _) => false,
        Expr::SetUpdate(Sign::Minus, inner) => has_plus(inner),
        Expr::Not(i) | Expr::Set(i) => has_plus(i),
        Expr::Tuple(fields) => {
            fields.iter().any(|f| f.sign == Some(Sign::Plus) || has_plus(&f.expr))
        }
        Expr::Epsilon | Expr::Atomic(..) | Expr::Constraint(..) => false,
    }
}

/// The empty object a `+`-carrying expression expects (§5.2's
/// context-dependent empty object).
fn empty_slot_for(e: &Expr) -> Value {
    match e {
        Expr::Tuple(_) => Value::empty_tuple(),
        Expr::Set(_) | Expr::SetUpdate(..) => Value::empty_set(),
        _ => Value::null(),
    }
}

fn apply(obj: &mut Value, expr: &Expr, subst: &Subst, stats: &mut UpdateStats) -> EvalResult<()> {
    match expr {
        Expr::Tuple(fields) => apply_tuple(obj, fields, subst, stats),
        Expr::Set(inner) => apply_set_filtered(obj, inner, subst, stats),
        Expr::SetUpdate(sign, inner) => apply_set_update(obj, *sign, inner, subst, stats),
        Expr::AtomicUpdate(sign, term) => apply_atomic_update(obj, *sign, term, subst, stats),
        // Pure query forms in update position: conditions only.
        Expr::Epsilon | Expr::Atomic(..) | Expr::Constraint(..) | Expr::Not(_) => Ok(()),
    }
}

fn kind_err(expected: Kind, found: &Value, context: &str) -> EvalError {
    EvalError::KindMismatch { expected, found: found.kind(), context: context.to_string() }
}

// ---- tuples ---------------------------------------------------------------

fn apply_tuple(
    obj: &mut Value,
    fields: &[Field],
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    if obj.as_tuple().is_none() {
        return Err(kind_err(Kind::Tuple, obj, "tuple update expression"));
    }
    // Split: pure-query fields filter & bind; update fields mutate.
    let query_fields: Vec<Field> =
        fields.iter().filter(|f| f.sign.is_none() && f.expr.is_query()).cloned().collect();
    let update_fields: Vec<&Field> =
        fields.iter().filter(|f| f.sign.is_some() || !f.expr.is_query()).collect();

    let substs = if query_fields.is_empty() {
        vec![subst.clone()]
    } else {
        satisfy_plain(obj, &Expr::Tuple(query_fields), subst)?
    };
    if substs.is_empty() {
        return Ok(()); // conditions unmet: the decree does not apply here
    }
    for s in &substs {
        for f in &update_fields {
            apply_field(obj, f, s, stats)?;
        }
    }
    Ok(())
}

fn apply_field(
    obj: &mut Value,
    field: &Field,
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    // Resolve the attribute position to concrete names.
    let names: Vec<Name> = match &field.attr {
        AttrTerm::Const(n) => vec![n.clone()],
        AttrTerm::Var(v) => match subst.get(v) {
            Some(Value::Atom(idl_object::Atom::Str(n))) => vec![n.clone()],
            Some(_) => return Err(EvalError::BadAttrBinding(v.clone())),
            // Unbound attribute variable: wildcard over existing attributes
            // (how `delStk` without a stock parameter touches every stock).
            // Make-true fields cannot wildcard — creating an attribute
            // needs a name (§7.1's binding requirement).
            None if field.sign == Some(Sign::Plus) || has_plus(&field.expr) => {
                return Err(EvalError::Uninstantiated(v.clone()));
            }
            None => obj.as_tuple().expect("checked by apply_tuple").keys().cloned().collect(),
        },
    };
    for name in names {
        // Extend σ with the attribute binding when the position was a
        // variable, so nested conditions can mention it.
        let s2 = match &field.attr {
            AttrTerm::Var(v) if !subst.is_bound(v) => {
                subst.bind(v, &Value::str(name.as_str())).expect("fresh binding cannot conflict")
            }
            _ => subst.clone(),
        };
        let t = obj.as_tuple_mut().expect("checked by apply_tuple");
        match field.sign {
            Some(Sign::Plus) => {
                // §5.2 tuple plus: (re)create the attribute with an empty
                // object, then make the sub-expression true on it.
                let materialised = materialize(&field.expr, &s2)?;
                t.insert(name.clone(), materialised);
                stats.modified += 1;
            }
            Some(Sign::Minus) => {
                if let Some(child) = t.get(name.as_str()) {
                    if !field.expr.is_query() {
                        return Err(EvalError::Malformed(
                            "tuple minus condition must be a query expression".into(),
                        ));
                    }
                    if holds_plain(child, &field.expr, &s2)? {
                        t.remove(name.as_str());
                        stats.deleted += 1;
                    }
                }
            }
            None => {
                // Navigation. Create the slot when the sub-expression will
                // make something true (the empty-object doctrine).
                if !t.contains(name.as_str()) {
                    if has_plus(&field.expr) {
                        t.insert(name.clone(), empty_slot_for(&field.expr));
                    } else {
                        continue; // nothing to delete below a missing attr
                    }
                }
                let child = t.get_mut(name.as_str()).expect("ensured above");
                apply(child, &field.expr, &s2, stats)?;
            }
        }
    }
    Ok(())
}

// ---- sets -----------------------------------------------------------------

/// Unsigned set expression in update context: elements matching the query
/// parts of `inner` receive its update parts.
fn apply_set_filtered(
    obj: &mut Value,
    inner: &Expr,
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    let Some(_) = obj.as_set() else {
        return Err(kind_err(Kind::Set, obj, "set update expression"));
    };
    let Expr::Tuple(fields) = inner else {
        return Err(EvalError::Malformed(
            "embedded updates inside a set expression require a tuple expression".into(),
        ));
    };
    let query_fields: Vec<Field> =
        fields.iter().filter(|f| f.sign.is_none() && f.expr.is_query()).cloned().collect();
    let update_fields: Vec<Field> =
        fields.iter().filter(|f| f.sign.is_some() || !f.expr.is_query()).cloned().collect();
    if update_fields.is_empty() {
        return Ok(());
    }
    let qexpr = Expr::Tuple(query_fields);

    let set = obj.as_set_mut().expect("checked above");
    // Take matching elements out (BTreeSet elements are immutable in
    // place), mutate copies, re-insert.
    let mut staged: Vec<Value> = Vec::new();
    let candidates =
        set.take_if(|elem| matches!(satisfy_plain(elem, &qexpr, subst), Ok(v) if !v.is_empty()));
    for elem in candidates {
        let substs = satisfy_plain(&elem, &qexpr, subst)?;
        let mut modified = elem;
        for s in &substs {
            for f in &update_fields {
                let fake_tuple_fields = [f.clone()];
                // Reuse the tuple machinery on the element.
                apply_tuple_element(&mut modified, &fake_tuple_fields, s, stats)?;
            }
        }
        staged.push(modified);
    }
    let set = obj.as_set_mut().expect("still a set");
    for v in staged {
        set.insert(v);
    }
    Ok(())
}

/// Applies update fields to a set element (a tuple, usually).
fn apply_tuple_element(
    elem: &mut Value,
    fields: &[Field],
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    if elem.as_tuple().is_none() {
        return Err(kind_err(Kind::Tuple, elem, "update field on set element"));
    }
    for f in fields {
        apply_field(elem, f, subst, stats)?;
    }
    Ok(())
}

fn apply_set_update(
    obj: &mut Value,
    sign: Sign,
    inner: &Expr,
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    let Some(set) = obj.as_set_mut() else {
        return Err(kind_err(Kind::Set, obj, "set update expression"));
    };
    match sign {
        Sign::Plus => {
            let v = materialize(inner, subst)?;
            if set.insert(v) {
                stats.inserted += 1;
            }
            Ok(())
        }
        Sign::Minus => {
            if !inner.is_query() {
                return Err(EvalError::Malformed(
                    "set minus condition must be a query expression".into(),
                ));
            }
            let mut err = None;
            let removed = set.remove_if(|elem| match satisfy_plain(elem, inner, subst) {
                Ok(v) => !v.is_empty(),
                Err(e) => {
                    err.get_or_insert(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            stats.deleted += removed;
            Ok(())
        }
    }
}

// ---- atoms ----------------------------------------------------------------

fn apply_atomic_update(
    obj: &mut Value,
    sign: Sign,
    term: &Term,
    subst: &Subst,
    stats: &mut UpdateStats,
) -> EvalResult<()> {
    match sign {
        Sign::Plus => {
            if obj.as_atom().is_none() {
                return Err(kind_err(Kind::Atom, obj, "atomic plus expression"));
            }
            let v = eval_term(term, subst)?;
            if v.as_atom().is_none() {
                return Err(kind_err(Kind::Atom, &v, "atomic plus payload"));
            }
            *obj = v;
            stats.modified += 1;
            Ok(())
        }
        Sign::Minus => {
            let Some(atom) = obj.as_atom() else {
                return Err(kind_err(Kind::Atom, obj, "atomic minus expression"));
            };
            if atom.is_null() {
                return Ok(()); // already "false henceforth"
            }
            // Satisfies `= term` under σ? Unbound variables are wildcards.
            let cond = Expr::Atomic(RelOp::Eq, term.clone());
            if holds_plain(obj, &cond, subst)? {
                *obj = Value::null();
                stats.modified += 1;
            }
            Ok(())
        }
    }
}

// ---- materialisation --------------------------------------------------------

/// Builds the object a make-true expression describes (evaluating `+exp` on
/// a fresh empty object, §5.2). Requires the expression to be simple and
/// ground under σ — unbound variables are an error, which is exactly the
/// paper's point about `insStk` needing all parameters (§7.1).
pub fn materialize(expr: &Expr, subst: &Subst) -> EvalResult<Value> {
    match expr {
        Expr::Epsilon => Ok(Value::null()),
        Expr::Atomic(RelOp::Eq, t) | Expr::AtomicUpdate(Sign::Plus, t) => {
            let v = eval_term(t, subst)?;
            Ok(v)
        }
        Expr::Atomic(..) => Err(EvalError::Malformed(
            "make-true payload must use only `=` comparisons (simple expression)".into(),
        )),
        Expr::Tuple(fields) => {
            let mut t = idl_object::TupleObj::new();
            for f in fields {
                if f.sign == Some(Sign::Minus) {
                    continue; // deleting from a fresh object is a no-op
                }
                let name = match &f.attr {
                    AttrTerm::Const(n) => n.clone(),
                    AttrTerm::Var(v) => match subst.get(v) {
                        Some(Value::Atom(idl_object::Atom::Str(n))) => n.clone(),
                        Some(_) => return Err(EvalError::BadAttrBinding(v.clone())),
                        None => return Err(EvalError::Uninstantiated(v.clone())),
                    },
                };
                t.insert(name, materialize(&f.expr, subst)?);
            }
            Ok(Value::Tuple(t))
        }
        Expr::Set(inner) | Expr::SetUpdate(Sign::Plus, inner) => {
            let mut s = idl_object::SetObj::new();
            if **inner != Expr::Epsilon {
                s.insert(materialize(inner, subst)?);
            }
            Ok(Value::Set(s))
        }
        Expr::AtomicUpdate(Sign::Minus, _) | Expr::SetUpdate(Sign::Minus, _) => {
            Err(EvalError::Malformed("make-false expression inside a make-true payload".into()))
        }
        Expr::Not(_) => Err(EvalError::Malformed("negation inside a make-true payload".into())),
        Expr::Constraint(..) => {
            Err(EvalError::Malformed("constraint inside a make-true payload".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::{parse_statement, Statement};
    use idl_object::universe::stock_universe;
    use idl_object::{tuple, Path};

    fn universe() -> Value {
        stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ])
    }

    /// Date atom from its surface literal.
    fn dval(s: &str) -> Value {
        Value::date(s.parse().unwrap())
    }

    /// Runs an update request the way the request runner does: thread query
    /// items, apply update items per binding.
    fn run(universe: &mut Value, src: &str) -> UpdateStats {
        let Statement::Request(req) = parse_statement(src).unwrap() else { panic!() };
        let mut substs = vec![Subst::new()];
        let mut stats = UpdateStats::default();
        for item in &req.items {
            if item.is_query() {
                let mut next = Vec::new();
                for s in &substs {
                    let mut out = Vec::new();
                    let store = Store::new();
                    Evaluator::new(&store, EvalOptions::naive())
                        .satisfy(universe, item, s, &mut out)
                        .unwrap();
                    next.extend(out);
                }
                next.sort();
                next.dedup();
                substs = next;
            } else {
                for s in &substs {
                    stats.merge(apply_update(universe, item, s).unwrap());
                }
            }
        }
        stats
    }

    fn rel_len(u: &Value, db: &str, rel: &str) -> usize {
        Path::new([db, rel]).get(u).unwrap().as_set().unwrap().len()
    }

    #[test]
    fn set_insert_and_delete() {
        let mut u = universe();
        let st = run(&mut u, "?.euter.r+(.date=3/5/85,.stkCode=sun,.clsPrice=30)");
        assert_eq!(st.inserted, 1);
        assert_eq!(rel_len(&u, "euter", "r"), 4);
        // duplicate insert is a no-op (set semantics)
        let st = run(&mut u, "?.euter.r+(.date=3/5/85,.stkCode=sun,.clsPrice=30)");
        assert_eq!(st.inserted, 0);

        let st = run(&mut u, "?.euter.r-(.date=3/3/85,.stkCode=hp)");
        assert_eq!(st.deleted, 1);
        assert_eq!(rel_len(&u, "euter", "r"), 3);
    }

    #[test]
    fn query_dependent_delete() {
        // paper: bind C first, then delete with C
        let mut u = universe();
        let st = run(
            &mut u,
            "?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=C), .euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=C)",
        );
        assert_eq!(st.deleted, 1);
        assert_eq!(rel_len(&u, "euter", "r"), 2);
    }

    #[test]
    fn atomic_minus_nulls_value() {
        // ?.chwab.r(.date=3/3/85, .hp-=C) — null out hp's price that day
        let mut u = universe();
        run(&mut u, "?.chwab.r(.date=3/3/85, .hp-=C)");
        let r = Path::new(["chwab", "r"]).get(&u).unwrap().as_set().unwrap();
        let day = r.iter().find(|t| t.attr("date") == Some(&dval("3/3/85"))).unwrap();
        assert!(day.attr("hp").unwrap().is_null());
        // attribute still exists, but no query satisfies it
        assert!(day.attr("ibm").is_some());
    }

    #[test]
    fn attribute_minus_removes_attribute_from_one_tuple() {
        // ?.chwab.r(.date=3/3/85, -.hp=C) — delete the attribute itself
        let mut u = universe();
        let st = run(&mut u, "?.chwab.r(.date=3/3/85, -.hp=C)");
        assert_eq!(st.deleted, 1);
        let r = Path::new(["chwab", "r"]).get(&u).unwrap().as_set().unwrap();
        let day33 = r.iter().find(|t| t.attr("date") == Some(&dval("3/3/85"))).unwrap();
        let day34 = r.iter().find(|t| t.attr("date") == Some(&dval("3/4/85"))).unwrap();
        assert!(day33.attr("hp").is_none(), "attribute gone from the 3/3 tuple only");
        assert!(day34.attr("hp").is_some(), "heterogeneous set: other tuples keep it");
    }

    #[test]
    fn price_bump_delete_then_insert() {
        let mut u = universe();
        run(
            &mut u,
            "?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
        );
        let r = Path::new(["chwab", "r"]).get(&u).unwrap().as_set().unwrap();
        let bumped =
            r.iter().any(|t| t.attr("hp").map(|v| v == &Value::float(60.0)).unwrap_or(false));
        assert!(bumped, "hp on 3/3/85 bumped from 50 to 60: {u}");
    }

    #[test]
    fn insert_into_fresh_relation_creates_it() {
        let mut u = universe();
        let st = run(&mut u, "?.newdb.newrel+(.a=1)");
        assert_eq!(st.inserted, 1);
        assert_eq!(rel_len(&u, "newdb", "newrel"), 1);
    }

    #[test]
    fn delete_from_missing_relation_is_noop() {
        let mut u = universe();
        let st = run(&mut u, "?.euter.nope-(.a=1)");
        assert_eq!(st.total(), 0);
    }

    #[test]
    fn relation_drop_via_tuple_minus() {
        // rmStk's ource clause: .ource-.hp (with the stock ground)
        let mut u = universe();
        let st = run(&mut u, "?.ource-.hp");
        assert_eq!(st.deleted, 1);
        assert!(Path::new(["ource", "hp"]).get(&u).is_none());
        assert!(Path::new(["ource", "ibm"]).get(&u).is_some());
    }

    #[test]
    fn attribute_drop_everywhere_via_set_filter() {
        // rmStk's chwab clause: .chwab.r(-.hp)
        let mut u = universe();
        run(&mut u, "?.chwab.r(-.hp)");
        let r = Path::new(["chwab", "r"]).get(&u).unwrap().as_set().unwrap();
        for t in r.iter() {
            assert!(t.attr("hp").is_none());
            assert!(t.attr("ibm").is_some() || t.attr("date").is_some());
        }
    }

    #[test]
    fn wildcard_unbound_attribute_variable() {
        // delStk without stock: .chwab.r(.S-=X, .date=3/3/85) nulls every
        // stock attribute on that date — but not the date attribute itself?
        // The paper's delStk nulls all attribute values including date; the
        // usual formulation filters on date first. Here S unbound ranges
        // over all attributes, so date gets nulled too once its condition
        // fired; the paper's own text says "all values are deleted". We
        // mirror that.
        let mut u = universe();
        run(&mut u, "?.chwab.r(.date=3/3/85, .S-=X)");
        let r = Path::new(["chwab", "r"]).get(&u).unwrap().as_set().unwrap();
        let nulled =
            r.iter().find(|t| t.as_tuple().unwrap().values().all(|v| v.is_null())).is_some();
        assert!(nulled, "one tuple fully nulled: {u}");
    }

    #[test]
    fn kind_mismatch_is_error() {
        let mut u = tuple! { db: tuple! { r: 5i64 } };
        let Statement::Request(req) = parse_statement("?.db.r+(.a=1)").unwrap() else { panic!() };
        let err = apply_update(&mut u, &req.items[0], &Subst::new()).unwrap_err();
        assert!(matches!(err, EvalError::KindMismatch { .. }));
    }

    #[test]
    fn materialize_requires_ground() {
        let Statement::Request(req) = parse_statement("?.euter.r+(.stkCode=S)").unwrap() else {
            panic!()
        };
        let mut u = universe();
        let err = apply_update(&mut u, &req.items[0], &Subst::new()).unwrap_err();
        assert!(matches!(err, EvalError::Uninstantiated(_)));
    }

    #[test]
    fn materialize_nested_shapes() {
        // nested set inside a tuple
        let Statement::Request(req) =
            parse_statement("?.db.r+(.name=box, .contents(.item=pen))").unwrap()
        else {
            panic!()
        };
        let mut u = Value::empty_tuple();
        apply_update(&mut u, &req.items[0], &Subst::new()).unwrap();
        let r = Path::new(["db", "r"]).get(&u).unwrap().as_set().unwrap();
        let elem = r.iter().next().unwrap();
        assert_eq!(elem.attr("name"), Some(&Value::str("box")));
        assert_eq!(elem.attr("contents").unwrap().as_set().unwrap().len(), 1);
    }

    #[test]
    fn update_order_matters() {
        // delete-then-insert vs insert-then-delete (§5.2's remark)
        let mut u1 = universe();
        run(&mut u1, "?.euter.r-(.stkCode=hp), .euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99)");
        // hp rows deleted first, then one inserted → exactly 1 hp row
        let r = Path::new(["euter", "r"]).get(&u1).unwrap().as_set().unwrap();
        let hp_rows = r.iter().filter(|t| t.attr("stkCode") == Some(&Value::str("hp"))).count();
        assert_eq!(hp_rows, 1);

        let mut u2 = universe();
        run(&mut u2, "?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99), .euter.r-(.stkCode=hp)");
        let r = Path::new(["euter", "r"]).get(&u2).unwrap().as_set().unwrap();
        let hp_rows = r.iter().filter(|t| t.attr("stkCode") == Some(&Value::str("hp"))).count();
        assert_eq!(hp_rows, 0, "reverse order deletes the fresh insert too");
    }
}
