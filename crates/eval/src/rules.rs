//! Rules and higher-order views (§6).
//!
//! A rule `head <- body` makes `headσ` true for every grounding σ of the
//! body. Because heads may contain higher-order variables in attribute
//! position, a single rule can define a *data-dependent number* of
//! relations — the paper's `dbO` customized view materialises one relation
//! per stock present anywhere in the universe.
//!
//! ## Stratification
//!
//! Negation in bodies requires stratified evaluation (the paper defers
//! formal semantics to \[KLK90\], which is stratified). Rules are abstracted
//! to *predicate patterns* — `(db, rel)` pairs where a higher-order
//! variable widens a component to "any" — and the dependency graph over
//! those patterns is checked: a negative dependency inside a recursive
//! component is rejected.
//!
//! ## Fixpoint
//!
//! Derived facts are written into the same store (the engine marks those
//! databases as derived and guards them against direct updates, §7.1).
//! Within a stratum, rules are iterated to quiescence. In *semi-naive*
//! mode (default) evaluation is delta-driven: each iteration logs exactly
//! which relations gained which rows ([`crate::delta`]), a rule is
//! re-evaluated in iteration *k* only if something it reads changed in
//! iteration *k−1*, and an eligible rule re-runs as `(Δ ⋈ full)` plan
//! variants over just the new rows instead of the full body. The naive
//! re-run-everything mode stays reachable via
//! [`EvalOptions::semi_naive`] / `IDL_NAIVE_FIXPOINT=1` as the reference
//! for the differential battery and the B8/B11 ablation benches.

use crate::compile::{compile_items, PlanCache};
use crate::delta::{DeltaLog, DeltaSink, DeltaTable};
use crate::error::{EvalError, EvalResult};
use crate::physical::CompiledItems;
use crate::query::{EvalOptions, Evaluator};
use crate::subst::Subst;
use crate::update::materialize;
use idl_lang::{AttrTerm, Expr, Field, RelOp, Rule};
use idl_object::{Atom, Name, SharingCounters, Value};
use idl_storage::{ChangeScope, Store};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors detected when a rule set is installed.
#[derive(Clone, PartialEq, Debug)]
pub enum RuleSetError {
    /// The head's database position must be a constant name.
    HeadDbNotConstant(String),
    /// Negation through recursion: not stratifiable.
    NotStratified(String),
    /// A rule failed structural validation.
    BadRule(String),
}

impl fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleSetError::HeadDbNotConstant(r) => {
                write!(f, "rule head database position must be constant: {r}")
            }
            RuleSetError::NotStratified(m) => write!(f, "not stratified: {m}"),
            RuleSetError::BadRule(m) => write!(f, "bad rule: {m}"),
        }
    }
}

impl std::error::Error for RuleSetError {}

/// `(db, rel)` pattern; `None` components mean "any" (higher-order
/// variable in that position).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredPat {
    /// Database component (`None` = variable).
    pub db: Option<Name>,
    /// Relation component (`None` = variable).
    pub rel: Option<Name>,
}

impl PredPat {
    /// Whether two patterns can denote a common `(db, rel)` predicate
    /// (`None` components match anything).
    pub fn overlaps(&self, other: &PredPat) -> bool {
        let db_ok = match (&self.db, &other.db) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        let rel_ok = match (&self.rel, &other.rel) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        db_ok && rel_ok
    }
}

/// A reference to a predicate from a rule body, with polarity.
#[derive(Clone, Debug)]
pub(crate) struct BodyRef {
    pub(crate) pat: PredPat,
    pub(crate) negated: bool,
}

/// How much of a database is derived (view-materialised).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DerivedScope {
    /// Every relation (a higher-order head defines data-dependent relation
    /// names, so the whole database belongs to the view layer).
    WholeDb,
    /// Only these named relations; the rest of the database is base data.
    Rels(BTreeSet<Name>),
}

/// Which parts of the universe are derived by rules. Relation-granular, so
/// a view may live alongside base relations in the same database (like
/// §2's `empMgr` next to `emp`/`dept`).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct DerivedCatalog {
    map: std::collections::BTreeMap<Name, DerivedScope>,
}

impl DerivedCatalog {
    /// Nothing derived.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the catalog from head patterns: a constant `(db, rel)` marks
    /// one relation; a variable relation position marks the whole database.
    pub fn from_patterns<'p>(pats: impl IntoIterator<Item = &'p PredPat>) -> Self {
        let mut cat = DerivedCatalog::default();
        for p in pats {
            let Some(db) = &p.db else { continue };
            match (&p.rel, cat.map.get_mut(db)) {
                (None, _) => {
                    cat.map.insert(db.clone(), DerivedScope::WholeDb);
                }
                (_, Some(DerivedScope::WholeDb)) => {}
                (Some(rel), Some(DerivedScope::Rels(set))) => {
                    set.insert(rel.clone());
                }
                (Some(rel), None) => {
                    let mut set = BTreeSet::new();
                    set.insert(rel.clone());
                    cat.map.insert(db.clone(), DerivedScope::Rels(set));
                }
            }
        }
        cat
    }

    /// Whether anything is derived at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the whole database is view territory.
    pub fn covers_db_entirely(&self, db: &str) -> bool {
        matches!(self.map.get(db), Some(DerivedScope::WholeDb))
    }

    /// Whether this database contains *any* derived relation.
    pub fn touches_db(&self, db: &str) -> bool {
        self.map.contains_key(db)
    }

    /// Whether a specific relation is derived.
    pub fn covers_relation(&self, db: &str, rel: &str) -> bool {
        match self.map.get(db) {
            Some(DerivedScope::WholeDb) => true,
            Some(DerivedScope::Rels(set)) => set.contains(rel),
            None => false,
        }
    }

    /// Whether an update with this change scope could write derived state
    /// (and must therefore be rejected / routed through a view-update
    /// program). Conservative for coarse scopes.
    pub fn guards_update(&self, scope: &idl_storage::ChangeScope) -> bool {
        match scope {
            idl_storage::ChangeScope::Relation { db, rel } => {
                self.covers_relation(db.as_str(), rel.as_str())
            }
            idl_storage::ChangeScope::Database { db } => self.touches_db(db.as_str()),
            idl_storage::ChangeScope::Universe => !self.map.is_empty(),
        }
    }

    /// Whether a journalled change can have touched *base* data (and so
    /// views must be re-derived). Derived-only writes return false.
    pub fn is_base_change(&self, scope: &idl_storage::ChangeScope) -> bool {
        match scope {
            idl_storage::ChangeScope::Relation { db, rel } => {
                !self.covers_relation(db.as_str(), rel.as_str())
            }
            idl_storage::ChangeScope::Database { db } => !self.covers_db_entirely(db.as_str()),
            idl_storage::ChangeScope::Universe => true,
        }
    }

    /// Iterates `(database, scope)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &DerivedScope)> {
        self.map.iter()
    }
}

/// Statistics from one materialisation run.
///
/// `iterations` / `rule_evals` depend on the evaluation schedule and so
/// may differ between thread counts (the parallel schedule evaluates
/// every runnable rule against the iteration-start snapshot, the
/// sequential one sees intra-iteration writes); the derived *store
/// contents* never do.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct FixpointStats {
    /// Fixpoint iterations across all strata.
    pub iterations: usize,
    /// Rule-body evaluations performed.
    pub rule_evals: usize,
    /// New facts (make-true operations that changed the universe).
    pub facts_added: usize,
    /// Rule bodies compiled to the physical plan IR this run. At most one
    /// compile per masked-in rule per refresh — plans are shared across
    /// fixpoint iterations and worker threads.
    pub plans_compiled: usize,
    /// Rule bodies served from the caller's memoized [`PlanCache`]
    /// ([`RuleEngine::materialize_cached`]).
    pub plan_cache_hits: usize,
    /// Rule bodies the memoized cache had to compile (equals
    /// `plans_compiled` when a cache was supplied).
    pub plan_cache_misses: usize,
    /// Rule evaluations *avoided* by semi-naive scheduling: a rule in an
    /// iterating stratum whose body predicates saw no delta is skipped.
    pub rules_skipped: usize,
    /// Task evaluations that ran a `(Δ ⋈ full)` delta variant instead of
    /// the full body (counting shards — see `StratumStats::workers`).
    pub delta_evals: usize,
    /// Task evaluations that ran a full body (first iterations, scalar
    /// heads, coarse changes, and delta-ineligible plans).
    pub full_evals: usize,
    /// Schematic deltas this run: data-dependent relations (or
    /// databases) that materialised for the *first time* (new stock in
    /// `euter` → new `dbO` relation). Derived by the engine from
    /// `new_relations` against what earlier refreshes already created.
    pub schematic_deltas: usize,
    /// Memoized plans dropped because their read set overlaps a
    /// schematic delta (set by the engine after the run).
    pub plan_invalidations: usize,
    /// Every relation/database slot this run created as a side effect of
    /// deriving facts (data-dependent heads only — constant-head
    /// skeletons are pre-created and never listed). Sorted, deduplicated.
    pub new_relations: Vec<PredPat>,
    /// Per-stratum telemetry, in evaluation (bottom-up) order. Masked-out
    /// strata are skipped entirely.
    pub strata: Vec<StratumStats>,
    /// Write-path view maintenance counters ([`crate::maintain`]); all
    /// zero when the run was a refresh rather than a maintenance pass.
    pub maintenance: MaintenanceStats,
    /// Structural-sharing activity during this run: O(1) handle clones,
    /// copy-on-write breaks, pointer-equality comparison hits — the delta
    /// of the process-wide [`SharingCounters`] over the run (concurrent
    /// engines in the same process bleed into it; in practice a refresh
    /// dominates its own window).
    pub sharing: SharingCounters,
}

impl FixpointStats {
    /// Fraction of this run's O(1) handle clones whose sharing was never
    /// broken by a copy-on-write deep copy (`1.0` = every clone stayed
    /// shared; see [`SharingCounters::sharing_hit_rate`]).
    pub fn sharing_hit_rate(&self) -> f64 {
        self.sharing.sharing_hit_rate()
    }
}

/// Counters for one write-path view maintenance pass
/// ([`crate::maintain`]): how much derived state an update touched
/// without a full re-derivation.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Distinct derived `(db, rel)` slots whose contents this pass
    /// changed (inserted into, deleted from, created or GC'd).
    pub views_maintained: usize,
    /// Rule evaluations the pass ran: `(Δ ⋈ full)` insert variants plus
    /// deletion-cascade victim queries and rederivation checks.
    pub delta_rules_run: usize,
    /// Data-dependent relations the pass materialised for the first time
    /// (schematic creates — a new stock defines a new relation).
    pub schematic_creates: usize,
    /// Data-dependent relations the pass emptied and garbage-collected
    /// (schematic GCs — the last quote for a stock was retracted).
    pub schematic_gcs: usize,
    /// Entries in the engine's `MaintainedViews` support bookkeeping
    /// after the pass (filled by the engine layer).
    pub support_entries: usize,
}

impl MaintenanceStats {
    /// Whether the pass did anything at all.
    pub fn any(&self) -> bool {
        *self != MaintenanceStats::default()
    }
}

/// Telemetry for one stratum of one materialisation run.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct StratumStats {
    /// Rules in the stratum after masking.
    pub rules: usize,
    /// Fixpoint iterations this stratum ran.
    pub iterations: usize,
    /// Most worker threads used by any iteration (1 = sequential path).
    pub workers: usize,
    /// Rule-body evaluations per worker, indexed by worker. The sequential
    /// path accumulates everything into index 0.
    pub rule_evals_per_worker: Vec<usize>,
    /// Rule evaluations skipped in this stratum (no body delta).
    pub rules_skipped: usize,
    /// `(Δ ⋈ full)` task evaluations in this stratum.
    pub delta_evals: usize,
    /// Wall-clock time spent on this stratum.
    pub wall: std::time::Duration,
    /// Structural-sharing activity (clones / CoW breaks / pointer-equality
    /// hits) during this stratum, as a process-wide counter delta.
    pub sharing: SharingCounters,
}

/// Compiled, stratified rule set.
#[derive(Debug)]
pub struct RuleEngine {
    pub(crate) rules: Vec<Rule>,
    pub(crate) head_pats: Vec<PredPat>,
    pub(crate) body_refs: Vec<Vec<BodyRef>>,
    /// Rule indices grouped by stratum, bottom-up.
    pub(crate) strata: Vec<Vec<usize>>,
    /// Use relation-granularity semi-naive iteration.
    pub semi_naive: bool,
    /// Iteration safety bound.
    pub max_iterations: usize,
}

impl RuleEngine {
    /// Compiles and stratifies a rule set.
    pub fn new(rules: Vec<Rule>) -> Result<Self, RuleSetError> {
        for r in &rules {
            r.validate().map_err(|e| RuleSetError::BadRule(e.to_string()))?;
        }
        let head_pats: Vec<PredPat> = rules
            .iter()
            .map(|r| {
                let p = head_pattern(&r.head);
                match p.db {
                    Some(_) => Ok(p),
                    None => Err(RuleSetError::HeadDbNotConstant(r.to_string())),
                }
            })
            .collect::<Result<_, _>>()?;
        let body_refs: Vec<Vec<BodyRef>> = rules
            .iter()
            .map(|r| {
                let mut refs = Vec::new();
                for item in &r.body {
                    collect_refs(item, false, &mut refs);
                }
                refs
            })
            .collect();
        let strata = stratify(&head_pats, &body_refs)?;
        Ok(RuleEngine {
            rules,
            head_pats,
            body_refs,
            strata,
            semi_naive: true,
            max_iterations: 10_000,
        })
    }

    /// The rules, in installation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The database names this rule set derives into (they should be
    /// cleared before materialisation and protected from direct updates).
    pub fn derived_databases(&self) -> BTreeSet<Name> {
        self.head_pats.iter().filter_map(|p| p.db.clone()).collect()
    }

    /// Relation-granular derived catalog for this rule set.
    pub fn derived_catalog(&self) -> DerivedCatalog {
        DerivedCatalog::from_patterns(self.head_pats.iter())
    }

    /// Materialises all views into the store (which also holds the base
    /// data). Derived databases are *not* cleared here — the caller decides
    /// whether this is a fresh build or a re-derivation.
    pub fn materialize(&self, store: &mut Store, opts: EvalOptions) -> EvalResult<FixpointStats> {
        self.materialize_masked(store, opts, None)
    }

    /// The head `(db, rel)` patterns, indexed like [`RuleEngine::rules`].
    pub fn head_patterns(&self) -> &[PredPat] {
        &self.head_pats
    }

    /// Computes which rules are (transitively) affected by the given
    /// changes: a rule is dirty when its body reads something that
    /// changed, when it reads a dirty rule's head, or when it *shares* a
    /// head with a dirty rule (re-derivation drops the shared head).
    pub fn dirty_mask(&self, changes: &[idl_storage::ChangeScope]) -> Vec<bool> {
        let n = self.rules.len();
        let mut dirty = vec![false; n];
        for (i, refs) in self.body_refs.iter().enumerate() {
            if refs.iter().any(|br| changes.iter().any(|c| scope_overlaps(c, &br.pat))) {
                dirty[i] = true;
            }
        }
        loop {
            let mut changed = false;
            for i in 0..n {
                if dirty[i] {
                    continue;
                }
                let reads_dirty = self.body_refs[i]
                    .iter()
                    .any(|br| (0..n).any(|j| dirty[j] && br.pat.overlaps(&self.head_pats[j])));
                let shares_dirty_head =
                    (0..n).any(|j| dirty[j] && self.head_pats[i].overlaps(&self.head_pats[j]));
                if reads_dirty || shares_dirty_head {
                    dirty[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dirty
    }

    /// Materialises a subset of the rules (`None` = all). The caller must
    /// have dropped the derived state of every masked-in rule's head so
    /// deletions propagate; strata ordering is preserved.
    pub fn materialize_masked(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
    ) -> EvalResult<FixpointStats> {
        self.materialize_cached(store, opts, mask, None)
    }

    /// [`RuleEngine::materialize_masked`] with a memoized plan cache.
    ///
    /// When [`EvalOptions::compile`] is on, every masked-in rule body is
    /// compiled (or fetched from `cache`) *once, up front*; the resulting
    /// plans are shared by every fixpoint iteration and worker thread of
    /// the run. The cache outlives refreshes, so a warm engine compiles
    /// nothing at all — `FixpointStats::plan_cache_hits` accounts for it.
    pub fn materialize_cached(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
        cache: Option<&mut PlanCache>,
    ) -> EvalResult<FixpointStats> {
        let sharing_before = SharingCounters::snapshot();
        let mut stats = FixpointStats::default();
        let set = self.build_plan_set(opts, mask, cache, &mut stats)?;
        let mut stats =
            self.run_fixpoint(store, opts, mask, &set.plans, &set.variants, &set.delta_ok, stats)?;
        stats.new_relations.sort();
        stats.new_relations.dedup();
        stats.sharing = SharingCounters::snapshot().delta_since(&sharing_before);
        Ok(stats)
    }

    /// Compiles the plan (and `(Δ ⋈ full)` variant) set for one run:
    /// shared by [`RuleEngine::materialize_cached`] and the write-path
    /// maintenance pass ([`crate::maintain`]).
    pub(crate) fn build_plan_set(
        &self,
        opts: EvalOptions,
        mask: Option<&[bool]>,
        mut cache: Option<&mut PlanCache>,
        stats: &mut FixpointStats,
    ) -> EvalResult<PlanSet> {
        // Compile once per refresh: one plan per masked-in rule body,
        // indexed like `rules`.
        let mut plans: Vec<Option<Arc<CompiledItems>>> = vec![None; self.rules.len()];
        if opts.compile {
            for (i, rule) in self.rules.iter().enumerate() {
                if mask.is_some_and(|m| !m[i]) {
                    continue;
                }
                plans[i] = Some(match cache.as_deref_mut() {
                    Some(cache) => {
                        let misses = cache.misses();
                        let plan = cache.get_or_compile(&rule.body, opts)?;
                        if cache.misses() > misses {
                            stats.plan_cache_misses += 1;
                            stats.plans_compiled += 1;
                        } else {
                            stats.plan_cache_hits += 1;
                        }
                        plan
                    }
                    None => {
                        stats.plans_compiled += 1;
                        Arc::new(compile_items(&rule.body, opts)?)
                    }
                });
            }
        }
        // (Δ ⋈ full) plan variants for semi-naive delta scheduling: one
        // variant per positive relation-scan occurrence of the body. A
        // rule is delta-eligible only when those occurrences line up
        // one-to-one with its positive body references (the conservative
        // check — aggregate bindings and other shapes the occurrence
        // analysis cannot account for fall back to full re-evaluation)
        // and its head has no scalar (`=`) write, whose last-write-wins
        // semantics a restricted evaluation could reorder.
        let mut delta_ok = vec![false; self.rules.len()];
        let mut variants: Vec<Vec<(PredPat, Arc<CompiledItems>)>> =
            vec![Vec::new(); self.rules.len()];
        if self.semi_naive && opts.semi_naive {
            for (i, rule) in self.rules.iter().enumerate() {
                if mask.is_some_and(|m| !m[i]) {
                    continue;
                }
                let Some(plan) = &plans[i] else { continue };
                if head_is_scalar(&rule.head) {
                    continue;
                }
                let occs = plan.delta_occurrences();
                if occs.is_empty() {
                    continue;
                }
                let mut occ_pats = occs.clone();
                occ_pats.sort();
                let mut pos_refs: Vec<PredPat> = self.body_refs[i]
                    .iter()
                    .filter(|b| !b.negated)
                    .map(|b| b.pat.clone())
                    .collect();
                pos_refs.sort();
                if occ_pats != pos_refs {
                    continue;
                }
                delta_ok[i] = true;
                variants[i] = occs
                    .into_iter()
                    .enumerate()
                    .map(|(k, pat)| (pat, Arc::new(plan.delta_variant(k))))
                    .collect();
            }
        }
        Ok(PlanSet { plans, variants, delta_ok })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_fixpoint(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
        plans: &[Option<Arc<CompiledItems>>],
        variants: &[Vec<(PredPat, Arc<CompiledItems>)>],
        delta_ok: &[bool],
        mut stats: FixpointStats,
    ) -> EvalResult<FixpointStats> {
        // Views exist even when empty: create the skeleton of every head
        // whose (db, rel) is fully constant. (Data-dependent heads create
        // their relations as facts arrive.)
        for (i, pat) in self.head_pats.iter().enumerate() {
            if mask.is_some_and(|m| !m[i]) {
                continue;
            }
            if let (Some(db), Some(rel)) = (&pat.db, &pat.rel) {
                if store.relation(db.as_str(), rel.as_str()).is_err() {
                    store
                        .create_relation(db.clone(), rel.clone())
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
            } else if let Some(db) = &pat.db {
                if !store.has_database(db.as_str()) {
                    store
                        .create_database(db.clone())
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
            }
        }
        for stratum in &self.strata {
            let selected: Vec<usize> =
                stratum.iter().copied().filter(|&i| mask.is_none_or(|m| m[i])).collect();
            if !selected.is_empty() {
                self.run_stratum(
                    store, &selected, opts, plans, variants, delta_ok, &mut stats, None, None,
                )?;
            }
        }
        Ok(stats)
    }

    /// Runs one stratum to quiescence with semi-naive, delta-driven task
    /// scheduling (DESIGN.md "Semi-naive delta scheduling").
    ///
    /// Each iteration builds a **task list**: rules whose body saw no
    /// delta are skipped; an eligible rule with concrete row deltas
    /// contributes one `(Δ ⋈ full)` task per overlapping body occurrence
    /// (sharded across spare workers); everything else contributes one
    /// full-evaluation task. With `opts.threads <= 1` tasks run in slot
    /// order and each rule's merge lands before the next rule evaluates
    /// (the classic chaotic / Gauss-Seidel schedule — a derivation that
    /// misses the delta window is caught next iteration, since its
    /// premise is in that iteration's delta). With more threads each
    /// iteration is a Jacobi step: workers pull tasks from an atomic
    /// cursor and evaluate against the *iteration-start* store (readers
    /// share `&Store`; nothing writes during the scan); the worker that
    /// finishes a rule's **last** task reduces that rule's task outputs
    /// (concatenate, sort, deduplicate — order-independent), and the
    /// reduced sets are merged into the store **sequentially in ascending
    /// rule order**. Within a stratum all intra-stratum dependencies are
    /// positive, so both schedules are inflationary over set-valued state
    /// and converge to the same least fixpoint; the deterministic
    /// reduction + merge order keeps the result bit-identical across
    /// worker counts, and rules with scalar (`=`) heads always run as
    /// full evaluations so last-write-wins stays schedule-independent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_stratum(
        &self,
        store: &mut Store,
        stratum: &[usize],
        opts: EvalOptions,
        plans: &[Option<Arc<CompiledItems>>],
        variants: &[Vec<(PredPat, Arc<CompiledItems>)>],
        delta_ok: &[bool],
        stats: &mut FixpointStats,
        seed: Option<DeltaLog>,
        mut accum: Option<&mut DeltaLog>,
    ) -> EvalResult<()> {
        let started = std::time::Instant::now();
        let sharing_before = SharingCounters::snapshot();
        let semi = self.semi_naive && opts.semi_naive;
        let thread_cap = opts.threads.max(1);
        let mut sstats = StratumStats {
            rules: stratum.len(),
            workers: 1,
            rule_evals_per_worker: vec![0],
            ..StratumStats::default()
        };
        // What the previous iteration changed. `None` = first round (or
        // naive mode, which re-runs everything until quiescence). A
        // maintenance pass seeds this with the update's own delta so the
        // very first round is already delta-driven.
        let mut last_delta: Option<DeltaLog> = seed;
        let outcome = loop {
            stats.iterations += 1;
            sstats.iterations += 1;
            if stats.iterations > self.max_iterations {
                break Err(EvalError::FixpointDiverged(self.max_iterations));
            }
            // Which rules run this iteration (semi-naive wake filter).
            // Coarse patterns wake any body reference; concrete row-level
            // deltas wake only *positive* references — within a stratum
            // negated references never overlap the stratum's own deltas
            // (stratification), and a maintenance seed encodes deletions
            // feeding negation as coarse patterns, so row deltas reaching
            // a negated reference can never enable a new derivation.
            let runnable: Vec<usize> = stratum
                .iter()
                .copied()
                .filter(|&ri| match last_delta.as_ref() {
                    Some(d) if semi => self.body_refs[ri].iter().any(|br| {
                        d.coarse_overlaps(&br.pat)
                            || (!br.negated
                                && d.rels.keys().any(|(db, rel)| {
                                    br.pat.db.as_ref().is_none_or(|x| x == db)
                                        && br.pat.rel.as_ref().is_none_or(|x| x == rel)
                                }))
                    }),
                    _ => true,
                })
                .collect();
            if semi && last_delta.is_some() {
                let skipped = stratum.len() - runnable.len();
                stats.rules_skipped += skipped;
                sstats.rules_skipped += skipped;
            }
            if runnable.is_empty() {
                break Ok(());
            }
            // Per rule: delta occurrences to run, or `None` = full
            // evaluation. Delta mode requires eligibility, concrete row
            // deltas, and no coarse (non-row-representable) change
            // overlapping the body.
            let slot_occs: Vec<Option<Vec<usize>>> = runnable
                .iter()
                .map(|&ri| {
                    let d = last_delta.as_ref()?;
                    if !(semi && delta_ok[ri]) || d.rels.is_empty() {
                        return None;
                    }
                    // A coarse change overlapping *any* body reference —
                    // either polarity — forces a full evaluation: the
                    // delta table cannot express what changed, and for a
                    // negated reference the change may *enable* rows the
                    // delta variants would never see.
                    if self.body_refs[ri].iter().any(|br| d.coarse_overlaps(&br.pat)) {
                        return None;
                    }
                    let concrete: Vec<PredPat> = d
                        .rels
                        .keys()
                        .map(|(db, rel)| PredPat { db: Some(db.clone()), rel: Some(rel.clone()) })
                        .collect();
                    let occs: Vec<usize> = variants[ri]
                        .iter()
                        .enumerate()
                        .filter(|(_, (pat, _))| concrete.iter().any(|c| pat.overlaps(c)))
                        .map(|(k, _)| k)
                        .collect();
                    if occs.is_empty() {
                        None
                    } else {
                        Some(occs)
                    }
                })
                .collect();
            let occ_count: usize = slot_occs.iter().filter_map(|o| o.as_ref().map(Vec::len)).sum();
            let full_count = slot_occs.iter().filter(|o| o.is_none()).count();
            // Shard delta occurrences across spare worker capacity: with
            // fewer tasks than workers, each occurrence's delta vector is
            // tiled into `shards` slices so the pool still saturates.
            let shards = if thread_cap > 1 && occ_count > 0 && occ_count + full_count < thread_cap {
                thread_cap.div_ceil(occ_count)
            } else {
                1
            };
            let mut tasks: Vec<Task> = Vec::new();
            for (slot, occs) in slot_occs.iter().enumerate() {
                match occs {
                    None => tasks.push(Task { slot, pos: 0, kind: TaskKind::Full }),
                    Some(occs) => {
                        let mut pos = 0;
                        for &occ in occs {
                            for shard in 0..shards {
                                tasks.push(Task {
                                    slot,
                                    pos,
                                    kind: TaskKind::Delta { occ, shard, shards },
                                });
                                pos += 1;
                            }
                        }
                    }
                }
            }
            stats.rule_evals += tasks.len();
            stats.full_evals += full_count;
            stats.delta_evals += tasks.len() - full_count;
            sstats.delta_evals += tasks.len() - full_count;

            let mut sink = if semi { DeltaSink::new() } else { DeltaSink::disabled() };
            let mut any_new = false;
            let workers = thread_cap.min(tasks.len());
            if workers <= 1 {
                // Sequential: a slot's tasks are contiguous; evaluate
                // them, reduce, and merge before the next rule runs.
                let mut i = 0;
                while i < tasks.len() {
                    let slot = tasks[i].slot;
                    let mut union: Vec<Subst> = Vec::new();
                    while i < tasks.len() && tasks[i].slot == slot {
                        let substs = self.eval_task(
                            store,
                            opts,
                            &runnable,
                            plans,
                            variants,
                            last_delta.as_ref().map(|d| &d.rels),
                            &tasks[i],
                        )?;
                        union.extend(substs);
                        sstats.rule_evals_per_worker[0] += 1;
                        i += 1;
                    }
                    union.sort();
                    union.dedup();
                    let added = self.merge_rule_delta(store, runnable[slot], &union, &mut sink)?;
                    if added > 0 {
                        stats.facts_added += added;
                        any_new = true;
                    }
                }
            } else {
                // Parallel: snapshot evaluation with a per-rule
                // last-finisher reduction, then ordered merge.
                sstats.workers = sstats.workers.max(workers);
                if sstats.rule_evals_per_worker.len() < workers {
                    sstats.rule_evals_per_worker.resize(workers, 0);
                }
                let reduced = self.eval_tasks_parallel(
                    store,
                    &runnable,
                    opts,
                    plans,
                    variants,
                    last_delta.as_ref().map(|d| &d.rels),
                    &tasks,
                    workers,
                    &mut sstats.rule_evals_per_worker,
                );
                for (slot, result) in reduced.into_iter().enumerate() {
                    let substs = result?;
                    let added = self.merge_rule_delta(store, runnable[slot], &substs, &mut sink)?;
                    if added > 0 {
                        stats.facts_added += added;
                        any_new = true;
                    }
                }
            }
            if !any_new {
                break Ok(());
            }
            if semi {
                stats.new_relations.extend(sink.log.new_rels.iter().cloned());
                if let Some(acc) = accum.as_deref_mut() {
                    for ((db, rel), rows) in &sink.log.rels {
                        acc.rels
                            .entry((db.clone(), rel.clone()))
                            .or_default()
                            .extend(rows.iter().cloned());
                    }
                    acc.coarse.extend(sink.log.coarse.iter().cloned());
                    acc.new_rels.extend(sink.log.new_rels.iter().cloned());
                }
                last_delta = Some(sink.log);
            }
        };
        sstats.wall = started.elapsed();
        sstats.sharing = SharingCounters::snapshot().delta_since(&sharing_before);
        stats.strata.push(sstats);
        outcome
    }

    /// Evaluates one fixpoint task — a full body, or one shard of one
    /// `(Δ ⋈ full)` variant — returning the sorted, deduplicated
    /// substitution set.
    #[allow(clippy::too_many_arguments)]
    fn eval_task(
        &self,
        store: &Store,
        opts: EvalOptions,
        runnable: &[usize],
        plans: &[Option<Arc<CompiledItems>>],
        variants: &[Vec<(PredPat, Arc<CompiledItems>)>],
        table: Option<&DeltaTable>,
        task: &Task,
    ) -> EvalResult<Vec<Subst>> {
        let ri = runnable[task.slot];
        let mut out = match &task.kind {
            TaskKind::Full => {
                let ev = Evaluator::new(store, opts);
                match &plans[ri] {
                    Some(plan) => ev.eval_compiled(plan, vec![Subst::new()])?,
                    None => ev.eval_items(&self.rules[ri].body, vec![Subst::new()])?,
                }
            }
            TaskKind::Delta { occ, shard, shards } => {
                let table = table.expect("delta tasks require a previous iteration's delta");
                let ev = Evaluator::with_delta(store, opts, table, (*shard, *shards));
                ev.eval_compiled(&variants[ri][*occ].1, vec![Subst::new()])?
            }
        };
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Evaluates the iteration's tasks on a worker pool against the shared
    /// read-only store. Workers pull tasks from an atomic cursor, so
    /// scheduling is dynamic; the worker that completes a rule's *last*
    /// task reduces that rule's outputs (concatenate, sort, dedup —
    /// deterministic no matter which worker runs it), replacing the old
    /// single-threaded reassembly barrier. Results come back in `runnable`
    /// slot order for the caller's ascending merge.
    #[allow(clippy::too_many_arguments)]
    fn eval_tasks_parallel(
        &self,
        store: &Store,
        runnable: &[usize],
        opts: EvalOptions,
        plans: &[Option<Arc<CompiledItems>>],
        variants: &[Vec<(PredPat, Arc<CompiledItems>)>],
        table: Option<&DeltaTable>,
        tasks: &[Task],
        workers: usize,
        evals_per_worker: &mut [usize],
    ) -> Vec<EvalResult<Vec<Subst>>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let mut task_counts = vec![0usize; runnable.len()];
        for t in tasks {
            task_counts[t.slot] += 1;
        }
        type TaskSlot = Mutex<Option<EvalResult<Vec<Subst>>>>;
        let outputs: Vec<Vec<TaskSlot>> =
            task_counts.iter().map(|&n| (0..n).map(|_| Mutex::new(None)).collect()).collect();
        let remaining: Vec<AtomicUsize> =
            task_counts.iter().map(|&n| AtomicUsize::new(n)).collect();
        let reduced: Vec<TaskSlot> = (0..runnable.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let counts: Vec<usize> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let outputs = &outputs;
                    let remaining = &remaining;
                    let reduced = &reduced;
                    scope.spawn(move |_| {
                        let mut n = 0usize;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks.len() {
                                break;
                            }
                            let task = &tasks[i];
                            let result =
                                self.eval_task(store, opts, runnable, plans, variants, table, task);
                            *outputs[task.slot][task.pos].lock().expect("output slot") =
                                Some(result);
                            n += 1;
                            if remaining[task.slot].fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Last finisher for this rule: reduce.
                                let mut union: Vec<Subst> = Vec::new();
                                let mut err = None;
                                for cell in &outputs[task.slot] {
                                    let taken = cell
                                        .lock()
                                        .expect("output slot")
                                        .take()
                                        .expect("task output present");
                                    match taken {
                                        Ok(substs) => union.extend(substs),
                                        Err(e) => {
                                            if err.is_none() {
                                                err = Some(e);
                                            }
                                        }
                                    }
                                }
                                let result = match err {
                                    Some(e) => Err(e),
                                    None => {
                                        union.sort();
                                        union.dedup();
                                        Ok(union)
                                    }
                                };
                                *reduced[task.slot].lock().expect("reduced slot") = Some(result);
                            }
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fixpoint worker panicked")).collect()
        })
        .expect("crossbeam scope");
        for (w, n) in counts.into_iter().enumerate() {
            evals_per_worker[w] += n;
        }
        reduced
            .into_iter()
            .map(|m| {
                m.into_inner().expect("reduced lock").expect("every rule reduced exactly once")
            })
            .collect()
    }

    /// Applies one rule's substitution set to the store under the rule's
    /// change scope, recording what changed into `sink`. Returns how many
    /// facts were new.
    fn merge_rule_delta(
        &self,
        store: &mut Store,
        ri: usize,
        substs: &[Subst],
        sink: &mut DeltaSink,
    ) -> EvalResult<usize> {
        if substs.is_empty() {
            return Ok(0);
        }
        let head = &self.rules[ri].head;
        let scope = match &self.head_pats[ri].db {
            Some(db) => ChangeScope::Database { db: db.clone() },
            None => ChangeScope::Universe,
        };
        store.mutate(scope, |universe| -> EvalResult<usize> {
            let mut n = 0;
            for s in substs {
                n += make_true_logged(universe, head, s, sink)?;
            }
            Ok(n)
        })
    }
}

/// The compiled artefacts of one run: a plan per masked-in rule plus its
/// `(Δ ⋈ full)` variants and delta eligibility, indexed like
/// [`RuleEngine::rules`].
pub(crate) struct PlanSet {
    pub(crate) plans: Vec<Option<Arc<CompiledItems>>>,
    pub(crate) variants: Vec<Vec<(PredPat, Arc<CompiledItems>)>>,
    pub(crate) delta_ok: Vec<bool>,
}

/// One unit of fixpoint work inside an iteration.
struct Task {
    /// Index into the iteration's `runnable` vector.
    slot: usize,
    /// Position among this slot's tasks (stable output ordering for the
    /// reduction).
    pos: usize,
    kind: TaskKind,
}

enum TaskKind {
    /// Evaluate the full rule body.
    Full,
    /// Evaluate the `occ`-th `(Δ ⋈ full)` variant over the `shard`-th of
    /// `shards` slices of each delta relation.
    Delta { occ: usize, shard: usize, shards: usize },
}

/// Whether a journalled change scope can intersect a predicate pattern.
fn scope_overlaps(scope: &idl_storage::ChangeScope, pat: &PredPat) -> bool {
    match scope {
        idl_storage::ChangeScope::Universe => true,
        idl_storage::ChangeScope::Database { db } => pat.db.as_ref().is_none_or(|d| d == db),
        idl_storage::ChangeScope::Relation { db, rel } => {
            pat.db.as_ref().is_none_or(|d| d == db) && pat.rel.as_ref().is_none_or(|r| r == rel)
        }
    }
}

/// Extracts the `(db, rel)` pattern from a rule head.
fn head_pattern(head: &Expr) -> PredPat {
    let mut db = None;
    let mut rel = None;
    if let Expr::Tuple(fields) = head {
        if let Some(f) = fields.first() {
            if let AttrTerm::Const(n) = &f.attr {
                db = Some(n.clone());
            }
            if let Expr::Tuple(inner) = &f.expr {
                if let Some(g) = inner.first() {
                    if let AttrTerm::Const(n) = &g.attr {
                        rel = Some(n.clone());
                    }
                }
            }
        }
    }
    PredPat { db, rel }
}

/// Collects `(db, rel)` references (with negation polarity) from a body
/// conjunct. Only the top two attribute levels matter for stratification.
pub(crate) fn collect_refs(expr: &Expr, negated: bool, out: &mut Vec<BodyRef>) {
    fn attr_to_opt(a: &AttrTerm) -> Option<Name> {
        match a {
            AttrTerm::Const(n) => Some(n.clone()),
            AttrTerm::Var(_) => None,
        }
    }
    match expr {
        Expr::Tuple(fields) => {
            for f in fields {
                let db = attr_to_opt(&f.attr);
                // find relation level inside
                let mut pushed = false;
                match &f.expr {
                    Expr::Tuple(inner) => {
                        for g in inner {
                            let rel = attr_to_opt(&g.attr);
                            let neg = negated || matches!(g.expr, Expr::Not(_));
                            out.push(BodyRef {
                                pat: PredPat { db: db.clone(), rel },
                                negated: neg,
                            });
                            pushed = true;
                        }
                    }
                    Expr::Not(inner) => {
                        if let Expr::Tuple(inner_fields) = inner.as_ref() {
                            for g in inner_fields {
                                out.push(BodyRef {
                                    pat: PredPat { db: db.clone(), rel: attr_to_opt(&g.attr) },
                                    negated: true,
                                });
                                pushed = true;
                            }
                        }
                    }
                    _ => {}
                }
                if !pushed {
                    out.push(BodyRef { pat: PredPat { db, rel: None }, negated });
                }
            }
        }
        Expr::Not(inner) => collect_refs(inner, true, out),
        Expr::Set(inner) => collect_refs(inner, negated, out),
        _ => {}
    }
}

/// Assigns strata; errors if negation occurs inside a recursive component.
fn stratify(
    head_pats: &[PredPat],
    body_refs: &[Vec<BodyRef>],
) -> Result<Vec<Vec<usize>>, RuleSetError> {
    let n = head_pats.len();
    let mut stratum = vec![0usize; n];
    // Relaxation: stratum[user] >= stratum[definer] (+1 if negative).
    // A well-founded assignment exists iff strata stay <= n.
    for _round in 0..=(n * n + 1) {
        let mut changed = false;
        for user in 0..n {
            for br in &body_refs[user] {
                for definer in 0..n {
                    if br.pat.overlaps(&head_pats[definer]) {
                        let need = stratum[definer] + usize::from(br.negated);
                        if stratum[user] < need {
                            stratum[user] = need;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        if stratum.iter().any(|&s| s > n) {
            return Err(RuleSetError::NotStratified(
                "negation through a recursive view definition".into(),
            ));
        }
    }
    let max = stratum.iter().copied().max().unwrap_or(0);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, &s) in stratum.iter().enumerate() {
        out[s].push(i);
    }
    out.retain(|v| !v.is_empty());
    if out.is_empty() && n == 0 {
        out.push(Vec::new());
    }
    Ok(out)
}

/// Makes `headσ` true in the universe (§6's recursive definition), creating
/// intermediate objects as needed. Returns how many facts were *new*.
pub fn make_true(universe: &mut Value, head: &Expr, subst: &Subst) -> EvalResult<usize> {
    let mut sink = DeltaSink::disabled();
    make_true_logged(universe, head, subst, &mut sink)
}

/// [`make_true`] with delta logging: every new row insert, scalar
/// overwrite and freshly created relation slot is recorded into `sink`
/// (the fixpoint's semi-naive bookkeeping). A disabled sink makes this
/// exactly `make_true`.
pub fn make_true_logged(
    universe: &mut Value,
    head: &Expr,
    subst: &Subst,
    sink: &mut DeltaSink,
) -> EvalResult<usize> {
    match head {
        Expr::Epsilon => Ok(0),
        Expr::Tuple(fields) => {
            let mut added = 0;
            for f in fields {
                added += make_true_field(universe, f, subst, sink)?;
            }
            Ok(added)
        }
        Expr::Set(inner) => {
            let Some(set) = universe.as_set_mut() else {
                return Err(EvalError::KindMismatch {
                    expected: idl_object::Kind::Set,
                    found: universe.kind(),
                    context: "rule head set expression".to_string(),
                });
            };
            let fact = materialize(inner, subst)?;
            let logged = if sink.enabled() { Some(fact.clone()) } else { None };
            if set.insert(fact) {
                if let Some(fact) = logged {
                    sink.set_inserted(fact);
                }
                Ok(1)
            } else {
                Ok(0)
            }
        }
        Expr::Atomic(RelOp::Eq, t) => {
            let v = crate::arith::eval_term(t, subst)?;
            if *universe == v {
                Ok(0)
            } else {
                *universe = v;
                sink.scalar_written();
                Ok(1)
            }
        }
        _ => Err(EvalError::Malformed("rule head must be a simple expression".into())),
    }
}

fn make_true_field(
    obj: &mut Value,
    field: &Field,
    subst: &Subst,
    sink: &mut DeltaSink,
) -> EvalResult<usize> {
    let Some(t) = obj.as_tuple_mut() else {
        return Err(EvalError::KindMismatch {
            expected: idl_object::Kind::Tuple,
            found: obj.kind(),
            context: "rule head tuple expression".to_string(),
        });
    };
    let name: Name = match &field.attr {
        AttrTerm::Const(n) => n.clone(),
        AttrTerm::Var(v) => match subst.get(v) {
            Some(Value::Atom(Atom::Str(n))) => n.clone(),
            Some(other) => {
                // A higher-order head variable bound to a non-name object:
                // coerce displayable atoms to names (prices make poor
                // relation names, but §6 only ever binds stock codes here);
                // reject aggregates.
                match other {
                    Value::Atom(a) if !a.is_null() => Name::new(a.to_string()),
                    _ => return Err(EvalError::BadAttrBinding(v.clone())),
                }
            }
            None => return Err(EvalError::Uninstantiated(v.clone())),
        },
    };
    // A slot that did not exist before this fact is a schematic delta at
    // relation/database depth (constant-head skeletons are pre-created by
    // the fixpoint, so only data-dependent heads ever trip this).
    let existed = !sink.enabled() || t.get(name.as_str()).is_some();
    sink.enter(&name);
    let slot = t.get_or_insert_with(name, || match &field.expr {
        Expr::Tuple(_) => Value::empty_tuple(),
        Expr::Set(_) => Value::empty_set(),
        _ => Value::null(),
    });
    if !existed {
        sink.created_slot();
    }
    let added = make_true_logged(slot, &field.expr, subst, sink);
    sink.leave();
    added
}

/// Whether a head contains a scalar (`=`) write anywhere above set level:
/// those have overwrite (last-write-wins) semantics, so the rule must
/// always evaluate in full — a delta-restricted subset could change which
/// write lands last. Set heads are row inserts and never scalar.
fn head_is_scalar(head: &Expr) -> bool {
    match head {
        Expr::Atomic(..) => true,
        Expr::Tuple(fields) => fields.iter().any(|f| head_is_scalar(&f.expr)),
        _ => false,
    }
}

/// The `(db, rel)` patterns a body reads — positive *and* negated (a read
/// is a read for schematic invalidation). Used by the plan cache to track
/// per-plan read sets.
pub(crate) fn read_patterns(items: &[Expr]) -> Vec<PredPat> {
    let mut refs = Vec::new();
    for item in items {
        collect_refs(item, false, &mut refs);
    }
    let mut out: Vec<PredPat> = refs.into_iter().map(|r| r.pat).collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::{parse_statement, Statement};
    use idl_object::universe::stock_universe;

    fn rule(src: &str) -> Rule {
        match parse_statement(src).unwrap() {
            Statement::Rule(r) => r,
            _ => panic!("not a rule: {src}"),
        }
    }

    fn base_store() -> Store {
        Store::from_universe(stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    /// The paper's unified view over all three schemata.
    fn unified_rules() -> Vec<Rule> {
        vec![
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)"),
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P)"),
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P)"),
        ]
    }

    #[test]
    fn unified_view_materialises() {
        let mut store = base_store();
        let engine = RuleEngine::new(unified_rules()).unwrap();
        assert_eq!(engine.stratum_count(), 1);
        let stats = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        // 3 quotes, from three sources each, deduplicated by value
        let p = store.relation("dbI", "p").unwrap();
        // chwab tuples carry date attr too: (date, stk=date)?? no — .S=P
        // enumerates the date attribute as well, giving (stk=date,
        // P=<date>) rows; those are also in p. The paper's own rule has the
        // same property; filtering is the administrator's job via name
        // mappings (§6). Here: 3 real quotes + 2 date-rows.
        assert!(p.len() >= 3, "p={p:?}");
        assert!(stats.facts_added >= p.len());
        // every true quote present
        for src in [
            "?.dbI.p(.date=3/3/85,.stk=hp,.clsPrice=50)",
            "?.dbI.p(.date=3/4/85,.stk=hp,.clsPrice=62)",
            "?.dbI.p(.date=3/3/85,.stk=ibm,.clsPrice=160)",
        ] {
            let Statement::Request(q) = parse_statement(src).unwrap() else { panic!() };
            assert!(Evaluator::with_defaults(&store).query(&q).unwrap().is_true(), "{src}");
        }
    }

    #[test]
    fn chwab_rule_needs_date_exclusion() {
        // With an explicit guard the date-attribute artefact disappears:
        let mut store = base_store();
        let rules =
            vec![rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P), S != date")];
        let engine = RuleEngine::new(rules).unwrap();
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let p = store.relation("dbI", "p").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn higher_order_view_one_relation_per_stock() {
        let mut store = base_store();
        let mut rules = unified_rules();
        rules.push(rule(
            ".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date",
        ));
        let engine = RuleEngine::new(rules).unwrap();
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let rels = store.relation_names("dbO").unwrap();
        let names: Vec<&str> = rels.iter().map(Name::as_str).collect();
        assert_eq!(names, vec!["hp", "ibm"], "one derived relation per stock");
        assert_eq!(store.relation("dbO", "hp").unwrap().len(), 2);
        assert_eq!(store.relation("dbO", "ibm").unwrap().len(), 1);
    }

    #[test]
    fn views_on_views_iterate_to_fixpoint() {
        let mut store = base_store();
        let mut rules = unified_rules();
        rules.push(rule(".dbE.r(.date=D,.stkCode=S,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date"));
        let engine = RuleEngine::new(rules).unwrap();
        let stats = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        assert_eq!(store.relation("dbE", "r").unwrap().len(), 3);
        assert!(stats.iterations >= 2, "needs a second pass for the dependent view");
    }

    #[test]
    fn stratified_negation() {
        let mut store = base_store();
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            // stocks in euter that do NOT appear in ource
            rule(".dbI.only(.stk=S) <- .dbI.p(.stk=S), .ource¬.S"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        assert!(engine.stratum_count() >= 1);
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let only = store.relation("dbI", "only").unwrap();
        assert!(only.is_empty(), "all euter stocks are in ource: {only:?}");
    }

    #[test]
    fn negative_recursion_rejected() {
        let rules =
            vec![rule(".a.p(.x=X) <- .a.q(.x=X), .a.r¬(.x=X)"), rule(".a.r(.x=X) <- .a.p(.x=X)")];
        let err = RuleEngine::new(rules).unwrap_err();
        assert!(matches!(err, RuleSetError::NotStratified(_)));
    }

    #[test]
    fn head_db_must_be_constant() {
        let rules = vec![rule(".X.p(.a=A) <- .euter.r(.stkCode=A), .euter.r(.stkCode=X)")];
        assert!(matches!(RuleEngine::new(rules), Err(RuleSetError::HeadDbNotConstant(_))));
    }

    #[test]
    fn make_true_is_idempotent() {
        let mut store = base_store();
        let engine = RuleEngine::new(unified_rules()).unwrap();
        let s1 = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let before = store.relation("dbI", "p").unwrap().clone();
        let s2 = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        assert_eq!(s2.facts_added, 0, "second run derives nothing new");
        assert_eq!(&before, store.relation("dbI", "p").unwrap());
        assert!(s1.facts_added > 0);
    }

    #[test]
    fn seminaive_does_fewer_rule_evals() {
        let mut s1 = base_store();
        let mut rules = unified_rules();
        rules.push(rule(".dbE.r(.date=D,.stkCode=S,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date"));
        rules.push(rule(".dbC2.tot(.stk=S) <- .dbE.r(.stkCode=S)"));
        let mut engine = RuleEngine::new(rules).unwrap();
        let semi = engine.materialize(&mut s1, EvalOptions::default()).unwrap();
        let mut s2 = base_store();
        engine.semi_naive = false;
        let naive = engine.materialize(&mut s2, EvalOptions::default()).unwrap();
        assert_eq!(s1.relation("dbC2", "tot").unwrap(), s2.relation("dbC2", "tot").unwrap());
        assert!(semi.rule_evals <= naive.rule_evals);
        assert_eq!(semi.facts_added, naive.facts_added);
    }

    /// Pinned options for the delta-scheduling counter tests: one worker
    /// (no sharding), compiled plans (delta variants exist), semi-naive on
    /// regardless of the `IDL_NAIVE_FIXPOINT` CI leg.
    fn semi_opts() -> EvalOptions {
        EvalOptions::default().with_threads(1).with_compile(true).with_semi_naive(true)
    }

    #[test]
    fn unchanged_rules_are_skipped_and_changed_rules_run_on_deltas() {
        // Same stratum: rule 0 reads only base data (never part of any
        // iteration's delta), rule 1 reads rule 0's head.
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".dbI.q(.stk=S) <- .dbI.p(.stk=S)"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        let stats = engine.materialize(&mut store, semi_opts()).unwrap();
        assert_eq!(store.relation("dbI", "q").unwrap().len(), 2, "hp, ibm");
        // Iteration 1 runs both rules in full. Iteration 2: the delta is
        // {(dbI,p), (dbI,q)} — rule 0's body (euter,r) did not change, so
        // it is skipped; rule 1 re-runs over Δ(dbI,p) only, derives
        // nothing new, and the stratum quiesces.
        assert_eq!(stats.iterations, 2, "{stats:?}");
        assert_eq!(stats.full_evals, 2, "{stats:?}");
        assert_eq!(stats.delta_evals, 1, "{stats:?}");
        assert_eq!(stats.rules_skipped, 1, "{stats:?}");
        assert_eq!(stats.rule_evals, 3, "{stats:?}");
        // Per-stratum mirrors of the same counters.
        assert_eq!(stats.strata.len(), 1);
        assert_eq!(stats.strata[0].rules_skipped, 1);
        assert_eq!(stats.strata[0].delta_evals, 1);
    }

    #[test]
    fn naive_mode_reevaluates_everything_every_iteration() {
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".dbI.q(.stk=S) <- .dbI.p(.stk=S)"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        let opts = semi_opts().with_semi_naive(false);
        let stats = engine.materialize(&mut store, opts).unwrap();
        assert_eq!(store.relation("dbI", "q").unwrap().len(), 2);
        // Both rules run in full on both iterations: no skips, no deltas.
        assert_eq!(stats.iterations, 2, "{stats:?}");
        assert_eq!(stats.rule_evals, 4, "{stats:?}");
        assert_eq!(stats.rules_skipped, 0, "{stats:?}");
        assert_eq!(stats.delta_evals, 0, "{stats:?}");
        assert_eq!(stats.full_evals, 4, "{stats:?}");
    }

    #[test]
    fn schematic_delta_reports_data_dependent_relations() {
        // A higher-order head materialises one relation per stock — each
        // is a schematic event the engine layer filters against its
        // seen-set. The constant `dbO` database skeleton is pre-created,
        // so only genuine relation creations are logged.
        let mut rules = unified_rules();
        rules.push(rule(
            ".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date",
        ));
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        let stats = engine.materialize(&mut store, semi_opts()).unwrap();
        let dbo: Vec<PredPat> = stats
            .new_relations
            .iter()
            .filter(|p| p.db.as_ref().is_some_and(|d| d.as_str() == "dbO"))
            .cloned()
            .collect();
        let expect = |rel: &str| PredPat { db: Some(Name::new("dbO")), rel: Some(Name::new(rel)) };
        assert_eq!(dbo, vec![expect("hp"), expect("ibm")], "{stats:?}");
        // Constant-head skeletons (dbI.p) never count as schematic.
        assert!(
            !stats.new_relations.iter().any(|p| p.db.as_ref().is_some_and(|d| d.as_str() == "dbI")),
            "{stats:?}"
        );
    }

    #[test]
    fn scalar_heads_always_reevaluate_in_full() {
        // A scalar (`=`) head has last-write-wins semantics, so the rule
        // is never delta-eligible: every one of its runs is a full
        // evaluation even when its input changed via a concrete delta.
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".agg.hi=P <- .dbI.p(.stk=hp), .euter.r(.stkCode=hp,.clsPrice=P)"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        let stats = engine.materialize(&mut store, semi_opts()).unwrap();
        // However many iterations ran, no delta task ever targeted the
        // scalar rule — and the value is still derived.
        assert_eq!(stats.delta_evals, 0, "{stats:?}");
        assert!(stats.full_evals >= 2, "{stats:?}");
        assert!(store.relation("agg", "hi").is_err(), "hi is an atom, not a relation");
    }
}
