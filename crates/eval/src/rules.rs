//! Rules and higher-order views (§6).
//!
//! A rule `head <- body` makes `headσ` true for every grounding σ of the
//! body. Because heads may contain higher-order variables in attribute
//! position, a single rule can define a *data-dependent number* of
//! relations — the paper's `dbO` customized view materialises one relation
//! per stock present anywhere in the universe.
//!
//! ## Stratification
//!
//! Negation in bodies requires stratified evaluation (the paper defers
//! formal semantics to \[KLK90\], which is stratified). Rules are abstracted
//! to *predicate patterns* — `(db, rel)` pairs where a higher-order
//! variable widens a component to "any" — and the dependency graph over
//! those patterns is checked: a negative dependency inside a recursive
//! component is rejected.
//!
//! ## Fixpoint
//!
//! Derived facts are written into the same store (the engine marks those
//! databases as derived and guards them against direct updates, §7.1).
//! Within a stratum, rules are iterated to quiescence. In *semi-naive*
//! mode (default) a rule is re-evaluated in iteration *k* only if
//! something it reads changed in iteration *k−1* — the relation-granularity
//! version of semi-naive evaluation, which the ablation bench B8 compares
//! against the naive re-run-everything mode.

use crate::compile::{compile_items, PlanCache};
use crate::error::{EvalError, EvalResult};
use crate::physical::CompiledItems;
use crate::query::{EvalOptions, Evaluator};
use crate::subst::Subst;
use crate::update::materialize;
use idl_lang::{AttrTerm, Expr, Field, RelOp, Rule};
use idl_object::{Atom, Name, SharingCounters, Value};
use idl_storage::{ChangeScope, Store};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors detected when a rule set is installed.
#[derive(Clone, PartialEq, Debug)]
pub enum RuleSetError {
    /// The head's database position must be a constant name.
    HeadDbNotConstant(String),
    /// Negation through recursion: not stratifiable.
    NotStratified(String),
    /// A rule failed structural validation.
    BadRule(String),
}

impl fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleSetError::HeadDbNotConstant(r) => {
                write!(f, "rule head database position must be constant: {r}")
            }
            RuleSetError::NotStratified(m) => write!(f, "not stratified: {m}"),
            RuleSetError::BadRule(m) => write!(f, "bad rule: {m}"),
        }
    }
}

impl std::error::Error for RuleSetError {}

/// `(db, rel)` pattern; `None` components mean "any" (higher-order
/// variable in that position).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PredPat {
    /// Database component (`None` = variable).
    pub db: Option<Name>,
    /// Relation component (`None` = variable).
    pub rel: Option<Name>,
}

impl PredPat {
    fn overlaps(&self, other: &PredPat) -> bool {
        let db_ok = match (&self.db, &other.db) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        let rel_ok = match (&self.rel, &other.rel) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        db_ok && rel_ok
    }
}

/// A reference to a predicate from a rule body, with polarity.
#[derive(Clone, Debug)]
struct BodyRef {
    pat: PredPat,
    negated: bool,
}

/// How much of a database is derived (view-materialised).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DerivedScope {
    /// Every relation (a higher-order head defines data-dependent relation
    /// names, so the whole database belongs to the view layer).
    WholeDb,
    /// Only these named relations; the rest of the database is base data.
    Rels(BTreeSet<Name>),
}

/// Which parts of the universe are derived by rules. Relation-granular, so
/// a view may live alongside base relations in the same database (like
/// §2's `empMgr` next to `emp`/`dept`).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct DerivedCatalog {
    map: std::collections::BTreeMap<Name, DerivedScope>,
}

impl DerivedCatalog {
    /// Nothing derived.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the catalog from head patterns: a constant `(db, rel)` marks
    /// one relation; a variable relation position marks the whole database.
    pub fn from_patterns<'p>(pats: impl IntoIterator<Item = &'p PredPat>) -> Self {
        let mut cat = DerivedCatalog::default();
        for p in pats {
            let Some(db) = &p.db else { continue };
            match (&p.rel, cat.map.get_mut(db)) {
                (None, _) => {
                    cat.map.insert(db.clone(), DerivedScope::WholeDb);
                }
                (_, Some(DerivedScope::WholeDb)) => {}
                (Some(rel), Some(DerivedScope::Rels(set))) => {
                    set.insert(rel.clone());
                }
                (Some(rel), None) => {
                    let mut set = BTreeSet::new();
                    set.insert(rel.clone());
                    cat.map.insert(db.clone(), DerivedScope::Rels(set));
                }
            }
        }
        cat
    }

    /// Whether anything is derived at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the whole database is view territory.
    pub fn covers_db_entirely(&self, db: &str) -> bool {
        matches!(self.map.get(db), Some(DerivedScope::WholeDb))
    }

    /// Whether this database contains *any* derived relation.
    pub fn touches_db(&self, db: &str) -> bool {
        self.map.contains_key(db)
    }

    /// Whether a specific relation is derived.
    pub fn covers_relation(&self, db: &str, rel: &str) -> bool {
        match self.map.get(db) {
            Some(DerivedScope::WholeDb) => true,
            Some(DerivedScope::Rels(set)) => set.contains(rel),
            None => false,
        }
    }

    /// Whether an update with this change scope could write derived state
    /// (and must therefore be rejected / routed through a view-update
    /// program). Conservative for coarse scopes.
    pub fn guards_update(&self, scope: &idl_storage::ChangeScope) -> bool {
        match scope {
            idl_storage::ChangeScope::Relation { db, rel } => {
                self.covers_relation(db.as_str(), rel.as_str())
            }
            idl_storage::ChangeScope::Database { db } => self.touches_db(db.as_str()),
            idl_storage::ChangeScope::Universe => !self.map.is_empty(),
        }
    }

    /// Whether a journalled change can have touched *base* data (and so
    /// views must be re-derived). Derived-only writes return false.
    pub fn is_base_change(&self, scope: &idl_storage::ChangeScope) -> bool {
        match scope {
            idl_storage::ChangeScope::Relation { db, rel } => {
                !self.covers_relation(db.as_str(), rel.as_str())
            }
            idl_storage::ChangeScope::Database { db } => !self.covers_db_entirely(db.as_str()),
            idl_storage::ChangeScope::Universe => true,
        }
    }

    /// Iterates `(database, scope)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &DerivedScope)> {
        self.map.iter()
    }
}

/// Statistics from one materialisation run.
///
/// `iterations` / `rule_evals` depend on the evaluation schedule and so
/// may differ between thread counts (the parallel schedule evaluates
/// every runnable rule against the iteration-start snapshot, the
/// sequential one sees intra-iteration writes); the derived *store
/// contents* never do.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct FixpointStats {
    /// Fixpoint iterations across all strata.
    pub iterations: usize,
    /// Rule-body evaluations performed.
    pub rule_evals: usize,
    /// New facts (make-true operations that changed the universe).
    pub facts_added: usize,
    /// Rule bodies compiled to the physical plan IR this run. At most one
    /// compile per masked-in rule per refresh — plans are shared across
    /// fixpoint iterations and worker threads.
    pub plans_compiled: usize,
    /// Rule bodies served from the caller's memoized [`PlanCache`]
    /// ([`RuleEngine::materialize_cached`]).
    pub plan_cache_hits: usize,
    /// Rule bodies the memoized cache had to compile (equals
    /// `plans_compiled` when a cache was supplied).
    pub plan_cache_misses: usize,
    /// Per-stratum telemetry, in evaluation (bottom-up) order. Masked-out
    /// strata are skipped entirely.
    pub strata: Vec<StratumStats>,
    /// Structural-sharing activity during this run: O(1) handle clones,
    /// copy-on-write breaks, pointer-equality comparison hits — the delta
    /// of the process-wide [`SharingCounters`] over the run (concurrent
    /// engines in the same process bleed into it; in practice a refresh
    /// dominates its own window).
    pub sharing: SharingCounters,
}

impl FixpointStats {
    /// Fraction of this run's O(1) handle clones whose sharing was never
    /// broken by a copy-on-write deep copy (`1.0` = every clone stayed
    /// shared; see [`SharingCounters::sharing_hit_rate`]).
    pub fn sharing_hit_rate(&self) -> f64 {
        self.sharing.sharing_hit_rate()
    }
}

/// Telemetry for one stratum of one materialisation run.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct StratumStats {
    /// Rules in the stratum after masking.
    pub rules: usize,
    /// Fixpoint iterations this stratum ran.
    pub iterations: usize,
    /// Most worker threads used by any iteration (1 = sequential path).
    pub workers: usize,
    /// Rule-body evaluations per worker, indexed by worker. The sequential
    /// path accumulates everything into index 0.
    pub rule_evals_per_worker: Vec<usize>,
    /// Wall-clock time spent on this stratum.
    pub wall: std::time::Duration,
    /// Structural-sharing activity (clones / CoW breaks / pointer-equality
    /// hits) during this stratum, as a process-wide counter delta.
    pub sharing: SharingCounters,
}

/// Compiled, stratified rule set.
#[derive(Debug)]
pub struct RuleEngine {
    rules: Vec<Rule>,
    head_pats: Vec<PredPat>,
    body_refs: Vec<Vec<BodyRef>>,
    /// Rule indices grouped by stratum, bottom-up.
    strata: Vec<Vec<usize>>,
    /// Use relation-granularity semi-naive iteration.
    pub semi_naive: bool,
    /// Iteration safety bound.
    pub max_iterations: usize,
}

impl RuleEngine {
    /// Compiles and stratifies a rule set.
    pub fn new(rules: Vec<Rule>) -> Result<Self, RuleSetError> {
        for r in &rules {
            r.validate().map_err(|e| RuleSetError::BadRule(e.to_string()))?;
        }
        let head_pats: Vec<PredPat> = rules
            .iter()
            .map(|r| {
                let p = head_pattern(&r.head);
                match p.db {
                    Some(_) => Ok(p),
                    None => Err(RuleSetError::HeadDbNotConstant(r.to_string())),
                }
            })
            .collect::<Result<_, _>>()?;
        let body_refs: Vec<Vec<BodyRef>> = rules
            .iter()
            .map(|r| {
                let mut refs = Vec::new();
                for item in &r.body {
                    collect_refs(item, false, &mut refs);
                }
                refs
            })
            .collect();
        let strata = stratify(&head_pats, &body_refs)?;
        Ok(RuleEngine {
            rules,
            head_pats,
            body_refs,
            strata,
            semi_naive: true,
            max_iterations: 10_000,
        })
    }

    /// The rules, in installation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The database names this rule set derives into (they should be
    /// cleared before materialisation and protected from direct updates).
    pub fn derived_databases(&self) -> BTreeSet<Name> {
        self.head_pats.iter().filter_map(|p| p.db.clone()).collect()
    }

    /// Relation-granular derived catalog for this rule set.
    pub fn derived_catalog(&self) -> DerivedCatalog {
        DerivedCatalog::from_patterns(self.head_pats.iter())
    }

    /// Materialises all views into the store (which also holds the base
    /// data). Derived databases are *not* cleared here — the caller decides
    /// whether this is a fresh build or a re-derivation.
    pub fn materialize(&self, store: &mut Store, opts: EvalOptions) -> EvalResult<FixpointStats> {
        self.materialize_masked(store, opts, None)
    }

    /// The head `(db, rel)` patterns, indexed like [`RuleEngine::rules`].
    pub fn head_patterns(&self) -> &[PredPat] {
        &self.head_pats
    }

    /// Computes which rules are (transitively) affected by the given
    /// changes: a rule is dirty when its body reads something that
    /// changed, when it reads a dirty rule's head, or when it *shares* a
    /// head with a dirty rule (re-derivation drops the shared head).
    pub fn dirty_mask(&self, changes: &[idl_storage::ChangeScope]) -> Vec<bool> {
        let n = self.rules.len();
        let mut dirty = vec![false; n];
        for (i, refs) in self.body_refs.iter().enumerate() {
            if refs.iter().any(|br| changes.iter().any(|c| scope_overlaps(c, &br.pat))) {
                dirty[i] = true;
            }
        }
        loop {
            let mut changed = false;
            for i in 0..n {
                if dirty[i] {
                    continue;
                }
                let reads_dirty = self.body_refs[i]
                    .iter()
                    .any(|br| (0..n).any(|j| dirty[j] && br.pat.overlaps(&self.head_pats[j])));
                let shares_dirty_head =
                    (0..n).any(|j| dirty[j] && self.head_pats[i].overlaps(&self.head_pats[j]));
                if reads_dirty || shares_dirty_head {
                    dirty[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dirty
    }

    /// Materialises a subset of the rules (`None` = all). The caller must
    /// have dropped the derived state of every masked-in rule's head so
    /// deletions propagate; strata ordering is preserved.
    pub fn materialize_masked(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
    ) -> EvalResult<FixpointStats> {
        self.materialize_cached(store, opts, mask, None)
    }

    /// [`RuleEngine::materialize_masked`] with a memoized plan cache.
    ///
    /// When [`EvalOptions::compile`] is on, every masked-in rule body is
    /// compiled (or fetched from `cache`) *once, up front*; the resulting
    /// plans are shared by every fixpoint iteration and worker thread of
    /// the run. The cache outlives refreshes, so a warm engine compiles
    /// nothing at all — `FixpointStats::plan_cache_hits` accounts for it.
    pub fn materialize_cached(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
        mut cache: Option<&mut PlanCache>,
    ) -> EvalResult<FixpointStats> {
        let sharing_before = SharingCounters::snapshot();
        let mut stats = FixpointStats::default();
        // Compile once per refresh: one plan per masked-in rule body,
        // indexed like `rules`.
        let mut plans: Vec<Option<Arc<CompiledItems>>> = vec![None; self.rules.len()];
        if opts.compile {
            for (i, rule) in self.rules.iter().enumerate() {
                if mask.is_some_and(|m| !m[i]) {
                    continue;
                }
                plans[i] = Some(match cache.as_deref_mut() {
                    Some(cache) => {
                        let misses = cache.misses();
                        let plan = cache.get_or_compile(&rule.body, opts)?;
                        if cache.misses() > misses {
                            stats.plan_cache_misses += 1;
                            stats.plans_compiled += 1;
                        } else {
                            stats.plan_cache_hits += 1;
                        }
                        plan
                    }
                    None => {
                        stats.plans_compiled += 1;
                        Arc::new(compile_items(&rule.body, opts)?)
                    }
                });
            }
        }
        let mut stats = self.run_fixpoint(store, opts, mask, &plans, stats)?;
        stats.sharing = SharingCounters::snapshot().delta_since(&sharing_before);
        Ok(stats)
    }

    fn run_fixpoint(
        &self,
        store: &mut Store,
        opts: EvalOptions,
        mask: Option<&[bool]>,
        plans: &[Option<Arc<CompiledItems>>],
        mut stats: FixpointStats,
    ) -> EvalResult<FixpointStats> {
        // Views exist even when empty: create the skeleton of every head
        // whose (db, rel) is fully constant. (Data-dependent heads create
        // their relations as facts arrive.)
        for (i, pat) in self.head_pats.iter().enumerate() {
            if mask.is_some_and(|m| !m[i]) {
                continue;
            }
            if let (Some(db), Some(rel)) = (&pat.db, &pat.rel) {
                if store.relation(db.as_str(), rel.as_str()).is_err() {
                    store
                        .create_relation(db.clone(), rel.clone())
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
            } else if let Some(db) = &pat.db {
                if !store.has_database(db.as_str()) {
                    store
                        .create_database(db.clone())
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
            }
        }
        for stratum in &self.strata {
            let selected: Vec<usize> =
                stratum.iter().copied().filter(|&i| mask.is_none_or(|m| m[i])).collect();
            if !selected.is_empty() {
                self.run_stratum(store, &selected, opts, plans, &mut stats)?;
            }
        }
        Ok(stats)
    }

    /// Runs one stratum to quiescence.
    ///
    /// With `opts.threads <= 1` this is the classic chaotic (Gauss-Seidel)
    /// schedule: rules run in index order and each sees the writes of the
    /// rules before it in the same iteration. With more threads each
    /// iteration becomes a Jacobi step — every runnable rule's body is
    /// evaluated by a worker pool against the *iteration-start* store
    /// (readers share `&Store`; nothing writes during the scan), then the
    /// per-rule substitution sets are merged **sequentially in ascending
    /// rule index**. Within a stratum all intra-stratum dependencies are
    /// positive, so both schedules are inflationary over set-valued state
    /// and converge to the same least fixpoint; the deterministic merge
    /// order makes even the non-monotone scalar-head edge case
    /// (`make_true` with an `=` head, see DESIGN.md) independent of the
    /// worker count.
    fn run_stratum(
        &self,
        store: &mut Store,
        stratum: &[usize],
        opts: EvalOptions,
        plans: &[Option<Arc<CompiledItems>>],
        stats: &mut FixpointStats,
    ) -> EvalResult<()> {
        let started = std::time::Instant::now();
        let sharing_before = SharingCounters::snapshot();
        let thread_cap = opts.threads.max(1);
        let mut sstats = StratumStats {
            rules: stratum.len(),
            workers: 1,
            rule_evals_per_worker: vec![0],
            ..StratumStats::default()
        };
        // Patterns that changed in the previous iteration (semi-naive).
        let mut last_changed: Option<Vec<PredPat>> = None; // None = first round
        let outcome = loop {
            stats.iterations += 1;
            sstats.iterations += 1;
            if stats.iterations > self.max_iterations {
                break Err(EvalError::FixpointDiverged(self.max_iterations));
            }
            // Which rules run this iteration (semi-naive filtering).
            let runnable: Vec<usize> = stratum
                .iter()
                .copied()
                .filter(|&ri| match &last_changed {
                    Some(changed) if self.semi_naive => self.body_refs[ri]
                        .iter()
                        .any(|br| changed.iter().any(|c| br.pat.overlaps(c))),
                    _ => true,
                })
                .collect();
            if runnable.is_empty() {
                break Ok(());
            }
            let workers = thread_cap.min(runnable.len());
            let mut changed_now: Vec<PredPat> = Vec::new();
            let mut any_new = false;
            if workers <= 1 {
                // Sequential: evaluate and merge rule by rule.
                for &ri in &runnable {
                    stats.rule_evals += 1;
                    sstats.rule_evals_per_worker[0] += 1;
                    let substs = {
                        let ev = Evaluator::new(store, opts);
                        match &plans[ri] {
                            Some(plan) => ev.eval_compiled(plan, vec![Subst::new()])?,
                            None => ev.eval_items(&self.rules[ri].body, vec![Subst::new()])?,
                        }
                    };
                    let added = self.merge_rule_delta(store, ri, &substs)?;
                    if added > 0 {
                        stats.facts_added += added;
                        any_new = true;
                        changed_now.push(self.head_pats[ri].clone());
                    }
                }
            } else {
                // Parallel: snapshot evaluation, then ordered merge.
                sstats.workers = sstats.workers.max(workers);
                if sstats.rule_evals_per_worker.len() < workers {
                    sstats.rule_evals_per_worker.resize(workers, 0);
                }
                let deltas = self.eval_rules_parallel(
                    store,
                    &runnable,
                    opts,
                    plans,
                    workers,
                    &mut sstats.rule_evals_per_worker,
                );
                for (slot, delta) in deltas.into_iter().enumerate() {
                    let ri = runnable[slot];
                    stats.rule_evals += 1;
                    let substs = delta?;
                    let added = self.merge_rule_delta(store, ri, &substs)?;
                    if added > 0 {
                        stats.facts_added += added;
                        any_new = true;
                        changed_now.push(self.head_pats[ri].clone());
                    }
                }
            }
            if !any_new {
                break Ok(());
            }
            last_changed = Some(changed_now);
        };
        sstats.wall = started.elapsed();
        sstats.sharing = SharingCounters::snapshot().delta_since(&sharing_before);
        stats.strata.push(sstats);
        outcome
    }

    /// Evaluates the bodies of `runnable` rules on a worker pool against
    /// the shared read-only store. Workers pull rule slots from an atomic
    /// cursor, so scheduling is dynamic, but the returned deltas are
    /// re-assembled in `runnable` order — the caller's merge is fully
    /// deterministic regardless of which worker evaluated what.
    fn eval_rules_parallel(
        &self,
        store: &Store,
        runnable: &[usize],
        opts: EvalOptions,
        plans: &[Option<Arc<CompiledItems>>],
        workers: usize,
        evals_per_worker: &mut [usize],
    ) -> Vec<EvalResult<Vec<Subst>>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, EvalResult<Vec<Subst>>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        scope.spawn(move |_| {
                            let mut out: Vec<(usize, EvalResult<Vec<Subst>>)> = Vec::new();
                            loop {
                                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                                if slot >= runnable.len() {
                                    break;
                                }
                                let ri = runnable[slot];
                                let ev = Evaluator::new(store, opts);
                                let delta = match &plans[ri] {
                                    Some(plan) => ev.eval_compiled(plan, vec![Subst::new()]),
                                    None => ev.eval_items(&self.rules[ri].body, vec![Subst::new()]),
                                };
                                out.push((slot, delta));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("fixpoint worker panicked")).collect()
            })
            .expect("crossbeam scope");
        let mut slots: Vec<Option<EvalResult<Vec<Subst>>>> =
            (0..runnable.len()).map(|_| None).collect();
        for (w, chunk) in per_worker.into_iter().enumerate() {
            evals_per_worker[w] += chunk.len();
            for (slot, delta) in chunk {
                slots[slot] = Some(delta);
            }
        }
        slots.into_iter().map(|s| s.expect("every runnable rule evaluated exactly once")).collect()
    }

    /// Applies one rule's substitution set to the store under the rule's
    /// change scope. Returns how many facts were new.
    fn merge_rule_delta(
        &self,
        store: &mut Store,
        ri: usize,
        substs: &[Subst],
    ) -> EvalResult<usize> {
        if substs.is_empty() {
            return Ok(0);
        }
        let head = &self.rules[ri].head;
        let scope = match &self.head_pats[ri].db {
            Some(db) => ChangeScope::Database { db: db.clone() },
            None => ChangeScope::Universe,
        };
        store.mutate(scope, |universe| -> EvalResult<usize> {
            let mut n = 0;
            for s in substs {
                n += make_true(universe, head, s)?;
            }
            Ok(n)
        })
    }
}

/// Whether a journalled change scope can intersect a predicate pattern.
fn scope_overlaps(scope: &idl_storage::ChangeScope, pat: &PredPat) -> bool {
    match scope {
        idl_storage::ChangeScope::Universe => true,
        idl_storage::ChangeScope::Database { db } => pat.db.as_ref().is_none_or(|d| d == db),
        idl_storage::ChangeScope::Relation { db, rel } => {
            pat.db.as_ref().is_none_or(|d| d == db) && pat.rel.as_ref().is_none_or(|r| r == rel)
        }
    }
}

/// Extracts the `(db, rel)` pattern from a rule head.
fn head_pattern(head: &Expr) -> PredPat {
    let mut db = None;
    let mut rel = None;
    if let Expr::Tuple(fields) = head {
        if let Some(f) = fields.first() {
            if let AttrTerm::Const(n) = &f.attr {
                db = Some(n.clone());
            }
            if let Expr::Tuple(inner) = &f.expr {
                if let Some(g) = inner.first() {
                    if let AttrTerm::Const(n) = &g.attr {
                        rel = Some(n.clone());
                    }
                }
            }
        }
    }
    PredPat { db, rel }
}

/// Collects `(db, rel)` references (with negation polarity) from a body
/// conjunct. Only the top two attribute levels matter for stratification.
fn collect_refs(expr: &Expr, negated: bool, out: &mut Vec<BodyRef>) {
    fn attr_to_opt(a: &AttrTerm) -> Option<Name> {
        match a {
            AttrTerm::Const(n) => Some(n.clone()),
            AttrTerm::Var(_) => None,
        }
    }
    match expr {
        Expr::Tuple(fields) => {
            for f in fields {
                let db = attr_to_opt(&f.attr);
                // find relation level inside
                let mut pushed = false;
                match &f.expr {
                    Expr::Tuple(inner) => {
                        for g in inner {
                            let rel = attr_to_opt(&g.attr);
                            let neg = negated || matches!(g.expr, Expr::Not(_));
                            out.push(BodyRef {
                                pat: PredPat { db: db.clone(), rel },
                                negated: neg,
                            });
                            pushed = true;
                        }
                    }
                    Expr::Not(inner) => {
                        if let Expr::Tuple(inner_fields) = inner.as_ref() {
                            for g in inner_fields {
                                out.push(BodyRef {
                                    pat: PredPat { db: db.clone(), rel: attr_to_opt(&g.attr) },
                                    negated: true,
                                });
                                pushed = true;
                            }
                        }
                    }
                    _ => {}
                }
                if !pushed {
                    out.push(BodyRef { pat: PredPat { db, rel: None }, negated });
                }
            }
        }
        Expr::Not(inner) => collect_refs(inner, true, out),
        Expr::Set(inner) => collect_refs(inner, negated, out),
        _ => {}
    }
}

/// Assigns strata; errors if negation occurs inside a recursive component.
fn stratify(
    head_pats: &[PredPat],
    body_refs: &[Vec<BodyRef>],
) -> Result<Vec<Vec<usize>>, RuleSetError> {
    let n = head_pats.len();
    let mut stratum = vec![0usize; n];
    // Relaxation: stratum[user] >= stratum[definer] (+1 if negative).
    // A well-founded assignment exists iff strata stay <= n.
    for _round in 0..=(n * n + 1) {
        let mut changed = false;
        for user in 0..n {
            for br in &body_refs[user] {
                for definer in 0..n {
                    if br.pat.overlaps(&head_pats[definer]) {
                        let need = stratum[definer] + usize::from(br.negated);
                        if stratum[user] < need {
                            stratum[user] = need;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        if stratum.iter().any(|&s| s > n) {
            return Err(RuleSetError::NotStratified(
                "negation through a recursive view definition".into(),
            ));
        }
    }
    let max = stratum.iter().copied().max().unwrap_or(0);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, &s) in stratum.iter().enumerate() {
        out[s].push(i);
    }
    out.retain(|v| !v.is_empty());
    if out.is_empty() && n == 0 {
        out.push(Vec::new());
    }
    Ok(out)
}

/// Makes `headσ` true in the universe (§6's recursive definition), creating
/// intermediate objects as needed. Returns how many facts were *new*.
pub fn make_true(universe: &mut Value, head: &Expr, subst: &Subst) -> EvalResult<usize> {
    match head {
        Expr::Epsilon => Ok(0),
        Expr::Tuple(fields) => {
            let mut added = 0;
            for f in fields {
                added += make_true_field(universe, f, subst)?;
            }
            Ok(added)
        }
        Expr::Set(inner) => {
            let Some(set) = universe.as_set_mut() else {
                return Err(EvalError::KindMismatch {
                    expected: idl_object::Kind::Set,
                    found: universe.kind(),
                    context: "rule head set expression".to_string(),
                });
            };
            let fact = materialize(inner, subst)?;
            if set.insert(fact) {
                Ok(1)
            } else {
                Ok(0)
            }
        }
        Expr::Atomic(RelOp::Eq, t) => {
            let v = crate::arith::eval_term(t, subst)?;
            if *universe == v {
                Ok(0)
            } else {
                *universe = v;
                Ok(1)
            }
        }
        _ => Err(EvalError::Malformed("rule head must be a simple expression".into())),
    }
}

fn make_true_field(obj: &mut Value, field: &Field, subst: &Subst) -> EvalResult<usize> {
    let Some(t) = obj.as_tuple_mut() else {
        return Err(EvalError::KindMismatch {
            expected: idl_object::Kind::Tuple,
            found: obj.kind(),
            context: "rule head tuple expression".to_string(),
        });
    };
    let name: Name = match &field.attr {
        AttrTerm::Const(n) => n.clone(),
        AttrTerm::Var(v) => match subst.get(v) {
            Some(Value::Atom(Atom::Str(n))) => n.clone(),
            Some(other) => {
                // A higher-order head variable bound to a non-name object:
                // coerce displayable atoms to names (prices make poor
                // relation names, but §6 only ever binds stock codes here);
                // reject aggregates.
                match other {
                    Value::Atom(a) if !a.is_null() => Name::new(a.to_string()),
                    _ => return Err(EvalError::BadAttrBinding(v.clone())),
                }
            }
            None => return Err(EvalError::Uninstantiated(v.clone())),
        },
    };
    let slot = t.get_or_insert_with(name, || match &field.expr {
        Expr::Tuple(_) => Value::empty_tuple(),
        Expr::Set(_) => Value::empty_set(),
        _ => Value::null(),
    });
    make_true(slot, &field.expr, subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::{parse_statement, Statement};
    use idl_object::universe::stock_universe;

    fn rule(src: &str) -> Rule {
        match parse_statement(src).unwrap() {
            Statement::Rule(r) => r,
            _ => panic!("not a rule: {src}"),
        }
    }

    fn base_store() -> Store {
        Store::from_universe(stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    /// The paper's unified view over all three schemata.
    fn unified_rules() -> Vec<Rule> {
        vec![
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)"),
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P)"),
            rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P)"),
        ]
    }

    #[test]
    fn unified_view_materialises() {
        let mut store = base_store();
        let engine = RuleEngine::new(unified_rules()).unwrap();
        assert_eq!(engine.stratum_count(), 1);
        let stats = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        // 3 quotes, from three sources each, deduplicated by value
        let p = store.relation("dbI", "p").unwrap();
        // chwab tuples carry date attr too: (date, stk=date)?? no — .S=P
        // enumerates the date attribute as well, giving (stk=date,
        // P=<date>) rows; those are also in p. The paper's own rule has the
        // same property; filtering is the administrator's job via name
        // mappings (§6). Here: 3 real quotes + 2 date-rows.
        assert!(p.len() >= 3, "p={p:?}");
        assert!(stats.facts_added >= p.len());
        // every true quote present
        for src in [
            "?.dbI.p(.date=3/3/85,.stk=hp,.clsPrice=50)",
            "?.dbI.p(.date=3/4/85,.stk=hp,.clsPrice=62)",
            "?.dbI.p(.date=3/3/85,.stk=ibm,.clsPrice=160)",
        ] {
            let Statement::Request(q) = parse_statement(src).unwrap() else { panic!() };
            assert!(Evaluator::with_defaults(&store).query(&q).unwrap().is_true(), "{src}");
        }
    }

    #[test]
    fn chwab_rule_needs_date_exclusion() {
        // With an explicit guard the date-attribute artefact disappears:
        let mut store = base_store();
        let rules =
            vec![rule(".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P), S != date")];
        let engine = RuleEngine::new(rules).unwrap();
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let p = store.relation("dbI", "p").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn higher_order_view_one_relation_per_stock() {
        let mut store = base_store();
        let mut rules = unified_rules();
        rules.push(rule(
            ".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date",
        ));
        let engine = RuleEngine::new(rules).unwrap();
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let rels = store.relation_names("dbO").unwrap();
        let names: Vec<&str> = rels.iter().map(Name::as_str).collect();
        assert_eq!(names, vec!["hp", "ibm"], "one derived relation per stock");
        assert_eq!(store.relation("dbO", "hp").unwrap().len(), 2);
        assert_eq!(store.relation("dbO", "ibm").unwrap().len(), 1);
    }

    #[test]
    fn views_on_views_iterate_to_fixpoint() {
        let mut store = base_store();
        let mut rules = unified_rules();
        rules.push(rule(".dbE.r(.date=D,.stkCode=S,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date"));
        let engine = RuleEngine::new(rules).unwrap();
        let stats = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        assert_eq!(store.relation("dbE", "r").unwrap().len(), 3);
        assert!(stats.iterations >= 2, "needs a second pass for the dependent view");
    }

    #[test]
    fn stratified_negation() {
        let mut store = base_store();
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            // stocks in euter that do NOT appear in ource
            rule(".dbI.only(.stk=S) <- .dbI.p(.stk=S), .ource¬.S"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        assert!(engine.stratum_count() >= 1);
        engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let only = store.relation("dbI", "only").unwrap();
        assert!(only.is_empty(), "all euter stocks are in ource: {only:?}");
    }

    #[test]
    fn negative_recursion_rejected() {
        let rules =
            vec![rule(".a.p(.x=X) <- .a.q(.x=X), .a.r¬(.x=X)"), rule(".a.r(.x=X) <- .a.p(.x=X)")];
        let err = RuleEngine::new(rules).unwrap_err();
        assert!(matches!(err, RuleSetError::NotStratified(_)));
    }

    #[test]
    fn head_db_must_be_constant() {
        let rules = vec![rule(".X.p(.a=A) <- .euter.r(.stkCode=A), .euter.r(.stkCode=X)")];
        assert!(matches!(RuleEngine::new(rules), Err(RuleSetError::HeadDbNotConstant(_))));
    }

    #[test]
    fn make_true_is_idempotent() {
        let mut store = base_store();
        let engine = RuleEngine::new(unified_rules()).unwrap();
        let s1 = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        let before = store.relation("dbI", "p").unwrap().clone();
        let s2 = engine.materialize(&mut store, EvalOptions::default()).unwrap();
        assert_eq!(s2.facts_added, 0, "second run derives nothing new");
        assert_eq!(&before, store.relation("dbI", "p").unwrap());
        assert!(s1.facts_added > 0);
    }

    #[test]
    fn seminaive_does_fewer_rule_evals() {
        let mut s1 = base_store();
        let mut rules = unified_rules();
        rules.push(rule(".dbE.r(.date=D,.stkCode=S,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date"));
        rules.push(rule(".dbC2.tot(.stk=S) <- .dbE.r(.stkCode=S)"));
        let mut engine = RuleEngine::new(rules).unwrap();
        let semi = engine.materialize(&mut s1, EvalOptions::default()).unwrap();
        let mut s2 = base_store();
        engine.semi_naive = false;
        let naive = engine.materialize(&mut s2, EvalOptions::default()).unwrap();
        assert_eq!(s1.relation("dbC2", "tot").unwrap(), s2.relation("dbC2", "tot").unwrap());
        assert!(semi.rule_evals <= naive.rule_evals);
        assert_eq!(semi.facts_added, naive.facts_added);
    }
}
