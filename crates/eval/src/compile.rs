//! Expression → physical plan compilation, and the memoized plan cache.
//!
//! Compilation runs the conjunct planner ([`crate::plan`]) once per
//! expression and lowers the planned AST into the [`crate::physical`] IR,
//! precomputing index-probe candidate lists for every stored-relation
//! scan. The result is reusable across substitutions, fixpoint iterations
//! and worker threads — compile once, run many.
//!
//! [`PlanCache`] memoizes compiled bodies across *calls*: keys are the
//! canonical (process-stable) expression hash from `idl_lang::hash`, plus
//! the option bits that change plan shape. Hash collisions are benign —
//! each bucket stores the source items and an entry only hits on full
//! structural equality.

use crate::error::{EvalError, EvalResult};
use crate::physical::{CompiledItems, PhysAttr, PhysField, PhysOp, ProbeKind, ProbePlan};
use crate::plan;
use crate::query::EvalOptions;
use crate::rules::{read_patterns, PredPat};
use idl_lang::{canonical_hash_items, AttrTerm, Expr, Field, RelOp, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// Compiles a request body or rule body: one physical plan per conjunct.
pub fn compile_items(items: &[Expr], opts: EvalOptions) -> EvalResult<CompiledItems> {
    let mut plans = Vec::with_capacity(items.len());
    for item in items {
        plans.push(compile_expr(item, opts)?);
    }
    Ok(CompiledItems::new(plans))
}

/// Compiles one expression: plans the conjunct order (when
/// [`EvalOptions::reorder`] is on, exactly as the interpreter would per
/// call), then lowers to the physical IR. Update forms are rejected —
/// only queries compile.
pub fn compile_expr(expr: &Expr, opts: EvalOptions) -> EvalResult<PhysOp> {
    let planned;
    let expr = if opts.reorder {
        planned = plan::plan_query_expr(expr);
        &planned
    } else {
        expr
    };
    lower(expr, opts.use_indexes)
}

fn lower(expr: &Expr, use_indexes: bool) -> EvalResult<PhysOp> {
    match expr {
        Expr::Epsilon => Ok(PhysOp::Epsilon),
        Expr::Not(inner) => Ok(PhysOp::Not(Box::new(lower(inner, use_indexes)?))),
        Expr::Atomic(op, term) => match (op, term) {
            (RelOp::Eq, Term::Var(v)) => Ok(PhysOp::Bind(v.clone())),
            _ => Ok(PhysOp::Filter(*op, term.clone())),
        },
        Expr::Constraint(a, op, b) => Ok(PhysOp::Constraint(a.clone(), *op, b.clone())),
        Expr::Tuple(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for f in fields {
                if f.sign.is_some() {
                    return Err(EvalError::Malformed("update field in query position".into()));
                }
                let attr = match &f.attr {
                    AttrTerm::Const(n) => PhysAttr::Const(n.clone()),
                    AttrTerm::Var(v) => PhysAttr::Var(v.clone()),
                };
                out.push(PhysField { attr, inner: lower(&f.expr, use_indexes)? });
            }
            Ok(PhysOp::Tuple(out))
        }
        Expr::Set(inner) => {
            let probes = if use_indexes { probe_candidates(inner) } else { Vec::new() };
            Ok(PhysOp::Scan { inner: Box::new(lower(inner, use_indexes)?), probes })
        }
        Expr::AtomicUpdate(..) | Expr::SetUpdate(..) => {
            Err(EvalError::Malformed("update expression in query position".into()))
        }
    }
}

/// The ordered index-probe candidates for a relation scan over `inner`:
/// every equality field first (in field order), then every range field —
/// the priority order the interpreter's `probe_spec` searches in. Which
/// candidate actually fires is a run-time question (its key term must be
/// ground), so all of them are kept.
fn probe_candidates(inner: &Expr) -> Vec<ProbePlan> {
    let Expr::Tuple(fields) = inner else { return Vec::new() };
    let mut out = Vec::new();
    for f in fields {
        if let Some((attr, term)) = eligible(f, |op| op == RelOp::Eq) {
            out.push(ProbePlan { attr, kind: ProbeKind::Eq, term });
        }
    }
    for f in fields {
        let range = |op: RelOp| matches!(op, RelOp::Lt | RelOp::Le | RelOp::Gt | RelOp::Ge);
        if let Some((attr, term)) = eligible(f, range) {
            let Expr::Atomic(op, _) = &f.expr else { unreachable!("eligible checked Atomic") };
            out.push(ProbePlan { attr, kind: ProbeKind::Range(*op), term });
        }
    }
    out
}

fn eligible(f: &Field, op_ok: impl Fn(RelOp) -> bool) -> Option<(idl_object::Name, Term)> {
    if f.sign.is_some() {
        return None;
    }
    let AttrTerm::Const(attr) = &f.attr else { return None };
    let Expr::Atomic(op, term) = &f.expr else { return None };
    if !op_ok(*op) {
        return None;
    }
    Some((attr.clone(), term.clone()))
}

/// One cached plan: the source expressions (checked for structural
/// equality on lookup), the relation patterns the plan reads (its
/// *read set*, for schematic-delta invalidation), and the compiled plan.
#[derive(Debug)]
struct CacheEntry {
    src: Vec<Expr>,
    reads: Vec<PredPat>,
    plan: Arc<CompiledItems>,
}

/// One collision bucket.
type Bucket = Vec<CacheEntry>;

/// A memoized plan cache: canonical expression hash (+ plan-shaping option
/// bits) → compiled plan. Shared plans are `Arc`-held, so hits are a
/// pointer clone; hit/miss counters feed `FixpointStats` and the bench
/// reports.
#[derive(Debug, Default)]
pub struct PlanCache {
    buckets: HashMap<(u64, u8), Bucket>,
    hits: u64,
    misses: u64,
}

/// The option bits that change compiled-plan shape. `threads` and
/// `max_results` are execution knobs, not plan knobs, so they do not key
/// the cache.
fn plan_flags(opts: EvalOptions) -> u8 {
    (opts.reorder as u8) | ((opts.use_indexes as u8) << 1)
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the memoized plan for `items`, compiling and inserting on
    /// first sight. A hit requires structural equality with the cached
    /// source, never just hash equality.
    pub fn get_or_compile(
        &mut self,
        items: &[Expr],
        opts: EvalOptions,
    ) -> EvalResult<Arc<CompiledItems>> {
        let key = (canonical_hash_items(items), plan_flags(opts));
        let bucket = self.buckets.entry(key).or_default();
        if let Some(e) = bucket.iter().find(|e| e.src.as_slice() == items) {
            self.hits += 1;
            return Ok(Arc::clone(&e.plan));
        }
        let plan = Arc::new(compile_items(items, opts)?);
        bucket.push(CacheEntry {
            src: items.to_vec(),
            reads: read_patterns(items),
            plan: Arc::clone(&plan),
        });
        self.misses += 1;
        Ok(plan)
    }

    /// Schematic-delta invalidation: drops exactly the cached plans whose
    /// read set overlaps one of `pats` (e.g. a data-dependent relation
    /// that materialised for the first time — a plan scanning `.dbO.S`
    /// with a variable relation position must be recompiled, a plan
    /// reading only `.dbO.hp` need not). Returns the number of plans
    /// dropped.
    pub fn invalidate_overlapping(&mut self, pats: &[PredPat]) -> usize {
        let before = self.len();
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| !e.reads.iter().any(|r| pats.iter().any(|p| r.overlaps(p))));
            !bucket.is_empty()
        });
        before - self.len()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= compiles through this cache) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct cached plans.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Drops all cached plans and zeroes the counters.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Evaluator;
    use crate::subst::Subst;
    use idl_lang::{parse_statement, Statement};
    use idl_object::universe::stock_universe;
    use idl_storage::Store;

    fn store() -> Store {
        let quotes = vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
        ];
        Store::from_universe(stock_universe(quotes)).unwrap()
    }

    fn items(src: &str) -> Vec<Expr> {
        let Statement::Request(req) = parse_statement(src).unwrap() else { panic!("{src}") };
        req.items
    }

    #[test]
    fn compiled_equals_tree_walk() {
        let s = store();
        for q in [
            "?.euter.r(.stkCode=hp, .clsPrice>60)",
            "?.chwab.r(.S>150)",
            "?.ource.S(.clsPrice=P)",
            "?.X.Y(.stkCode)",
            "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp,.clsPrice>P)",
        ] {
            let body = items(q);
            let interp = Evaluator::new(&s, EvalOptions::default().with_compile(false));
            let compiled = Evaluator::new(&s, EvalOptions::default().with_compile(true));
            let plan = compile_items(&body, compiled.options()).unwrap();
            let a = interp.eval_items(&body, vec![Subst::new()]).unwrap();
            let b = compiled.eval_compiled(&plan, vec![Subst::new()]).unwrap();
            assert_eq!(a, b, "compiled/interpreted mismatch on {q}");
        }
    }

    #[test]
    fn relation_scans_carry_probe_candidates() {
        let body = items("?.euter.r(.stkCode=hp, .clsPrice>60)");
        let plan = compile_items(&body, EvalOptions::default()).unwrap();
        let rendered = plan.explain();
        assert!(rendered.contains("probe eq(.stkCode = hp)"), "{rendered}");
        assert!(rendered.contains("range(.clsPrice > 60)"), "{rendered}");
    }

    #[test]
    fn cache_hits_only_on_structural_equality() {
        let mut cache = PlanCache::new();
        let opts = EvalOptions::default();
        let a = items("?.euter.r(.stkCode=hp)");
        let b = items("?.euter.r(.stkCode=ibm)");
        let p1 = cache.get_or_compile(&a, opts).unwrap();
        let p2 = cache.get_or_compile(&a, opts).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup must reuse the plan");
        let _ = cache.get_or_compile(&b, opts).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_distinguishes_plan_shaping_options() {
        let mut cache = PlanCache::new();
        let a = items("?.euter.r(.clsPrice>60, .stkCode=hp)");
        let _ = cache.get_or_compile(&a, EvalOptions::default()).unwrap();
        let _ = cache
            .get_or_compile(&a, EvalOptions { reorder: false, ..EvalOptions::default() })
            .unwrap();
        assert_eq!(cache.misses(), 2, "reorder changes plan shape, so it must miss");
    }

    #[test]
    fn update_expressions_do_not_compile() {
        let Statement::Request(req) =
            parse_statement("?.euter.r+(.stkCode=hp,.date=1/1/99,.clsPrice=1)").unwrap()
        else {
            panic!()
        };
        let err = compile_items(&req.items, EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Malformed(_)));
    }
}
