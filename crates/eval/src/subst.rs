//! Substitutions and answer sets (§4.2).
//!
//! *"A substitution is … a non-empty finite set of ordered pairs
//! {X₁/o₁, …, Xₙ/oₙ} … We define the answer to a query to be the set of
//! grounding substitutions satisfying the query. … In the limiting case,
//! when there is no variable in the query, the answer is assumed to be
//! boolean."*

use idl_lang::Var;
use idl_object::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A substitution: a finite map from variables to objects.
///
/// Bindings are immutable once made; [`Subst::bind`] on an already-bound
/// variable succeeds only if the values agree structurally (this is what
/// makes repeated variables express joins).
///
/// Serialises as a JSON object mapping variable names to their bound
/// values (`#[serde(transparent)]`), so answers travel over the
/// `idl-server` wire unchanged.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Default, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Subst {
    map: BTreeMap<Var, Value>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The object bound to `v`, if any.
    pub fn get(&self, v: &Var) -> Option<&Value> {
        self.map.get(v)
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: &Var) -> bool {
        self.map.contains_key(v)
    }

    /// Attempts to bind `v` to `value`. Returns the extended substitution,
    /// or `None` if `v` is already bound to a different value.
    #[must_use]
    pub fn bind(&self, v: &Var, value: &Value) -> Option<Subst> {
        match self.map.get(v) {
            Some(existing) if existing == value => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut m = self.clone();
                m.map.insert(v.clone(), value.clone());
                Some(m)
            }
        }
    }

    /// In-place unchecked insert (used when the variable is known fresh).
    pub fn insert(&mut self, v: Var, value: Value) {
        self.map.insert(v, value);
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.map.iter()
    }

    /// Projects the substitution onto a set of variables (used to present
    /// answers over the query's named variables, dropping internals like
    /// the parser's anonymous-`_` fresh variables, see [`Var::is_gensym`]).
    pub fn project(&self, vars: &BTreeSet<Var>) -> Subst {
        Subst {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(*v))
                .map(|(v, o)| (v.clone(), o.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, o)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}/{o}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Value)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Var, Value)>>(iter: I) -> Self {
        Subst { map: iter.into_iter().collect() }
    }
}

/// The answer to a query: a *set* of grounding substitutions (§4.2).
///
/// Serialises as a JSON array of substitutions in deterministic
/// (`BTreeSet`) order, so equality on both sides of a wire round-trip is
/// structural equality.
#[derive(Clone, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AnswerSet {
    substs: BTreeSet<Subst>,
}

impl AnswerSet {
    /// Empty answer (query is false).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a substitution (set semantics: duplicates collapse).
    pub fn insert(&mut self, s: Subst) -> bool {
        self.substs.insert(s)
    }

    /// Number of distinct answers.
    pub fn len(&self) -> usize {
        self.substs.len()
    }

    /// No answers?
    pub fn is_empty(&self) -> bool {
        self.substs.is_empty()
    }

    /// The boolean reading: at least one satisfying substitution.
    pub fn is_true(&self) -> bool {
        !self.substs.is_empty()
    }

    /// Iterates answers in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Subst> {
        self.substs.iter()
    }

    /// All distinct values bound to variable `v` across answers.
    pub fn column(&self, v: &str) -> Vec<Value> {
        let var = Var::new(v);
        let mut seen = BTreeSet::new();
        for s in &self.substs {
            if let Some(val) = s.get(&var) {
                seen.insert(val.clone());
            }
        }
        seen.into_iter().collect()
    }

    /// Projects every answer onto `vars` and re-deduplicates.
    pub fn project(&self, vars: &BTreeSet<Var>) -> AnswerSet {
        AnswerSet { substs: self.substs.iter().map(|s| s.project(vars)).collect() }
    }
}

impl FromIterator<Subst> for AnswerSet {
    fn from_iter<I: IntoIterator<Item = Subst>>(iter: I) -> Self {
        AnswerSet { substs: iter.into_iter().collect() }
    }
}

impl fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.substs.is_empty() {
            return write!(f, "false");
        }
        if self.substs.len() == 1 && self.substs.iter().next().unwrap().is_empty() {
            return write!(f, "true");
        }
        for (i, s) in self.substs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_checks_consistency() {
        let s = Subst::new();
        let s1 = s.bind(&Var::new("X"), &Value::int(1)).unwrap();
        assert!(s1.bind(&Var::new("X"), &Value::int(1)).is_some());
        assert!(s1.bind(&Var::new("X"), &Value::int(2)).is_none());
        let s2 = s1.bind(&Var::new("Y"), &Value::str("hp")).unwrap();
        assert_eq!(s2.len(), 2);
        assert_eq!(s1.len(), 1, "bind is persistent, not in-place");
    }

    #[test]
    fn projection() {
        let s: Subst = [(Var::new("X"), Value::int(1)), (Var::new("_G1"), Value::int(9))]
            .into_iter()
            .collect();
        let keep: BTreeSet<Var> = [Var::new("X")].into_iter().collect();
        let p = s.project(&keep);
        assert_eq!(p.len(), 1);
        assert!(p.is_bound(&Var::new("X")));
    }

    #[test]
    fn answer_set_dedups_and_booleanises() {
        let mut a = AnswerSet::new();
        assert!(!a.is_true());
        let s1: Subst = [(Var::new("X"), Value::int(1))].into_iter().collect();
        assert!(a.insert(s1.clone()));
        assert!(!a.insert(s1));
        assert_eq!(a.len(), 1);
        assert!(a.is_true());
        assert_eq!(a.column("X"), vec![Value::int(1)]);
        assert!(a.column("Y").is_empty());
    }

    #[test]
    fn display_booleans() {
        let mut a = AnswerSet::new();
        assert_eq!(a.to_string(), "false");
        a.insert(Subst::new());
        assert_eq!(a.to_string(), "true");
    }
}
