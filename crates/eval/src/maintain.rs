//! Write-path incremental view maintenance (DESIGN.md "Write-path view
//! maintenance").
//!
//! After an update commits, the engine hands the update's own row-level
//! delta to [`RuleEngine::maintain_cached`], which drives it through the
//! stratified rule set *bottom-up* instead of re-deriving the world:
//!
//! * **inserts** reuse the semi-naive machinery — the stratum fixpoint is
//!   seeded with the update's Δ⁺ rows, so woken rules run their
//!   `(Δ ⋈ full)` plan variants over just the new rows
//!   (`RuleEngine::run_stratum` with a seed delta);
//! * **retractions** run a DRed-style deletion cascade: for every rule
//!   whose body reads a deleted row positively (or a freshly inserted row
//!   through negation), a *victim query* — the rule body with that subgoal
//!   replaced by a scan over a temporary delta relation — is evaluated
//!   against the *pre-round* store to over-approximate the derived rows
//!   that may have lost support; victims are deleted, then exactly
//!   **rederived** from the remaining facts, and only the unsupported
//!   remainder stays deleted and cascades;
//! * **schematic deltas** are first-class: a delta that materialises a
//!   data-dependent relation is reported through
//!   [`FixpointStats::new_relations`] so the engine can register it with
//!   the plan cache, and a retraction that empties one garbage-collects
//!   the slot ([`MaintainOutcome::gcd`]) so the maintained store stays
//!   byte-identical to a full rebuild.
//!
//! The pass is *sound but partial*: any shape it cannot maintain exactly
//! (scalar heads, coarse writes, non-row base changes, unsupported
//! subgoal shapes) makes it bail with `Ok(None)`, and the engine falls
//! back to marking the world stale for the refresh/repair path. Bailing
//! late is safe — a half-applied pass only ever leaves state the full
//! rebuild recomputes from scratch.

use crate::compile::PlanCache;
use crate::delta::{DeltaLog, DeltaTable};
use crate::error::{EvalError, EvalResult};
use crate::query::{EvalOptions, Evaluator};
use crate::rules::{FixpointStats, MaintenanceStats, PredPat, RuleEngine};
use crate::subst::Subst;
use crate::update::materialize;
use idl_lang::{AttrTerm, Expr, Field, RelOp, Rule, Term};
use idl_object::{Atom, Name, Value};
use idl_storage::Store;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Prefix for the temporary databases holding one round's delta rows
/// during victim-query evaluation. Contains a control character no parsed
/// IDL name can contain, so it never collides with user data.
const DELTA_DB_MARKER: &str = "\u{1}delta:";

/// Rows per `(db, rel)` a deletion-cascade rederivation still derives.
type RederivedRows = BTreeMap<(Name, Name), BTreeSet<Value>>;

fn marker_db(db: &Name) -> Name {
    Name::new(format!("{DELTA_DB_MARKER}{}", db.as_str()))
}

/// The row-level difference one update request made to *base* relations:
/// the seed of a maintenance pass.
#[derive(Clone, Debug, Default)]
pub struct UpdateDelta {
    /// Rows the update inserted, grouped by `(db, rel)`.
    pub plus: DeltaTable,
    /// Rows the update deleted, grouped by `(db, rel)`.
    pub minus: DeltaTable,
}

impl UpdateDelta {
    /// Whether the update changed any rows at all.
    pub fn is_empty(&self) -> bool {
        self.plus.values().all(Vec::is_empty) && self.minus.values().all(Vec::is_empty)
    }
}

/// What a successful maintenance pass did to the derived state.
#[derive(Clone, Debug, Default)]
pub struct MaintainOutcome {
    /// Run telemetry, including [`FixpointStats::maintenance`] counters.
    pub stats: FixpointStats,
    /// Derived relations the pass emptied and garbage-collected.
    pub gcd: Vec<PredPat>,
    /// Net derived-row inserts, grouped by `(db, rel)`.
    pub plus: DeltaTable,
    /// Net derived-row deletions, grouped by `(db, rel)`.
    pub minus: DeltaTable,
}

/// Extracts the row-level [`UpdateDelta`] of an update from the pre/post
/// universes and the journalled change scopes, or `None` when the change
/// is not expressible as relation-row edits (universe-scoped writes,
/// created or dropped database/relation slots, scalar or nested-value
/// changes) — the caller then falls back to the refresh path.
pub fn diff_update(
    pre: &Value,
    post: &Value,
    changes: &[idl_storage::ChangeScope],
) -> Option<UpdateDelta> {
    use idl_storage::ChangeScope;
    let mut delta = UpdateDelta::default();
    let mut seen: BTreeSet<(Name, Option<Name>)> = BTreeSet::new();
    for scope in changes {
        match scope {
            ChangeScope::Universe => return None,
            ChangeScope::Relation { db, rel } => {
                if !seen.insert((db.clone(), Some(rel.clone()))) {
                    continue;
                }
                diff_relation(pre, post, db, rel, &mut delta)?;
            }
            ChangeScope::Database { db } => {
                if !seen.insert((db.clone(), None)) {
                    continue;
                }
                let pre_db = pre.attr(db.as_str())?.as_tuple()?;
                let post_db = post.attr(db.as_str())?.as_tuple()?;
                let pre_rels: Vec<&Name> = pre_db.keys().collect();
                let post_rels: Vec<&Name> = post_db.keys().collect();
                if pre_rels != post_rels {
                    return None; // relation slot created or dropped
                }
                for rel in pre_rels {
                    diff_relation(pre, post, db, rel, &mut delta)?;
                }
            }
        }
    }
    delta.plus.retain(|_, rows| !rows.is_empty());
    delta.minus.retain(|_, rows| !rows.is_empty());
    Some(delta)
}

/// Row-diffs one relation slot into `delta`; `None` when either side is
/// missing or not a set (slot created/dropped, or a scalar "relation").
fn diff_relation(
    pre: &Value,
    post: &Value,
    db: &Name,
    rel: &Name,
    delta: &mut UpdateDelta,
) -> Option<()> {
    let pre_v = pre.attr(db.as_str())?.attr(rel.as_str())?;
    let post_v = post.attr(db.as_str())?.attr(rel.as_str())?;
    if pre_v == post_v {
        return Some(());
    }
    let pre_set = pre_v.as_set()?;
    let post_set = post_v.as_set()?;
    let plus: Vec<Value> = post_set.iter().filter(|v| !pre_set.contains(v)).cloned().collect();
    let minus: Vec<Value> = pre_set.iter().filter(|v| !post_set.contains(v)).cloned().collect();
    if !plus.is_empty() {
        delta.plus.entry((db.clone(), rel.clone())).or_default().extend(plus);
    }
    if !minus.is_empty() {
        delta.minus.entry((db.clone(), rel.clone())).or_default().extend(minus);
    }
    Some(())
}

/// Per-view support bookkeeping carried by the engine (and persisted by
/// the durable layer) so a restart can resume incremental maintenance
/// instead of silently falling back to a full rebuild.
///
/// The counts are *coarse* — row counts per maintained view, not
/// per-derivation multiplicities. Retraction correctness never depends on
/// them: the deletion cascade rederives exactly. They exist so state
/// handoff (snapshot → restart) is checkable: a fingerprint mismatch with
/// the installed rules discards the state and rebuilds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintainedViews {
    /// Fingerprint of the rule set the state was computed under (each
    /// rule's canonical display form, in installation order).
    pub rules: Vec<String>,
    /// One entry per maintained derived relation.
    pub views: Vec<ViewSupport>,
}

/// Support entry for one maintained derived relation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewSupport {
    /// Database name.
    pub db: String,
    /// Relation name.
    pub rel: String,
    /// Rows currently derived into the relation.
    pub rows: usize,
}

impl MaintainedViews {
    /// Recomputes the state from a freshly materialised store: one entry
    /// per derived relation the catalog covers.
    pub fn recompute(
        store: &Store,
        catalog: &crate::rules::DerivedCatalog,
        rules: &[Rule],
    ) -> MaintainedViews {
        let mut views = Vec::new();
        for db in store.database_names() {
            if !catalog.touches_db(db.as_str()) {
                continue;
            }
            let Ok(rels) = store.relation_names(db.as_str()) else { continue };
            for rel in rels {
                if !catalog.covers_relation(db.as_str(), rel.as_str()) {
                    continue;
                }
                if let Ok(set) = store.relation(db.as_str(), rel.as_str()) {
                    views.push(ViewSupport {
                        db: db.as_str().to_string(),
                        rel: rel.as_str().to_string(),
                        rows: set.len(),
                    });
                }
            }
        }
        MaintainedViews { rules: rules.iter().map(|r| r.to_string()).collect(), views }
    }

    /// Whether this state was computed under exactly these rules.
    pub fn matches_rules(&self, rules: &[Rule]) -> bool {
        self.rules.len() == rules.len()
            && self.rules.iter().zip(rules).all(|(s, r)| *s == r.to_string())
    }

    /// Applies one maintenance pass's net row changes and GCs.
    pub fn apply(&mut self, outcome: &MaintainOutcome) {
        let mut index: BTreeMap<(String, String), usize> = self
            .views
            .iter()
            .enumerate()
            .map(|(i, v)| ((v.db.clone(), v.rel.clone()), i))
            .collect();
        for ((db, rel), rows) in &outcome.plus {
            let key = (db.as_str().to_string(), rel.as_str().to_string());
            match index.get(&key) {
                Some(&i) => self.views[i].rows += rows.len(),
                None => {
                    index.insert(key.clone(), self.views.len());
                    self.views.push(ViewSupport { db: key.0, rel: key.1, rows: rows.len() });
                }
            }
        }
        for ((db, rel), rows) in &outcome.minus {
            let key = (db.as_str().to_string(), rel.as_str().to_string());
            if let Some(&i) = index.get(&key) {
                self.views[i].rows = self.views[i].rows.saturating_sub(rows.len());
            }
        }
        for pat in &outcome.gcd {
            if let (Some(db), Some(rel)) = (&pat.db, &pat.rel) {
                self.views.retain(|v| !(v.db == db.as_str() && v.rel == rel.as_str()));
            }
        }
        self.views.sort_by(|a, b| (&a.db, &a.rel).cmp(&(&b.db, &b.rel)));
    }

    /// Number of support entries currently tracked.
    pub fn entry_count(&self) -> usize {
        self.views.len()
    }
}

impl RuleEngine {
    /// Incrementally maintains the derived views after one update, given
    /// the update's row-level [`UpdateDelta`]. Returns `Ok(None)` when
    /// the pass cannot maintain exactly (the caller must fall back to a
    /// full refresh) and `Ok(Some(outcome))` when the store now matches
    /// what a full rebuild would produce.
    pub fn maintain_cached(
        &self,
        store: &mut Store,
        delta: &UpdateDelta,
        opts: EvalOptions,
        cache: Option<&mut PlanCache>,
    ) -> EvalResult<Option<MaintainOutcome>> {
        if !(self.semi_naive && opts.semi_naive) {
            return Ok(None);
        }
        let mut stats = FixpointStats::default();
        let set = self.build_plan_set(opts, None, cache, &mut stats)?;
        // Stratum index per rule, for the rederive cross-stratum guard.
        let mut rule_stratum = vec![0usize; self.rules.len()];
        for (si, stratum) in self.strata.iter().enumerate() {
            for &ri in stratum {
                rule_stratum[ri] = si;
            }
        }
        // Deltas carried into each stratum: the base update's rows plus
        // every derived change made by the strata already maintained.
        let mut carry_plus: DeltaTable = delta.plus.clone();
        let mut carry_minus: DeltaTable = delta.minus.clone();
        let mut out = MaintainOutcome::default();
        let mut m = MaintenanceStats::default();
        for (si, stratum) in self.strata.iter().enumerate() {
            let carry_pats: Vec<PredPat> = carry_plus
                .keys()
                .chain(carry_minus.keys())
                .map(|(db, rel)| PredPat { db: Some(db.clone()), rel: Some(rel.clone()) })
                .collect();
            let woken = stratum.iter().any(|&ri| {
                self.body_refs[ri].iter().any(|br| carry_pats.iter().any(|c| br.pat.overlaps(c)))
            });
            if !woken {
                // Nothing this stratum reads changed: skip it entirely.
                stats.rules_skipped += stratum.len();
                continue;
            }
            if stratum.iter().any(|&ri| head_is_scalar_rule(&self.rules[ri])) {
                // Scalar (`=`) heads have last-write-wins semantics a
                // delta pass cannot maintain — and an intra-stratum delta
                // could wake one mid-fixpoint, so the whole stratum bails.
                return Ok(None);
            }
            // --- deletion cascade (DRed: over-approximate, rederive) ---
            let mut pend_plus: DeltaTable = carry_plus.clone();
            let mut pend_minus: DeltaTable = carry_minus.clone();
            loop {
                let victims = match self.find_victims(
                    store,
                    stratum,
                    &pend_plus,
                    &pend_minus,
                    opts,
                    &mut stats,
                )? {
                    Some(v) => v,
                    None => return Ok(None),
                };
                // Keep only victims actually present in the store.
                let mut present: BTreeMap<(Name, Name), Vec<Value>> = BTreeMap::new();
                for ((db, rel), rows) in victims {
                    let Ok(set) = store.relation(db.as_str(), rel.as_str()) else { continue };
                    let rows: Vec<Value> = rows.into_iter().filter(|r| set.contains(r)).collect();
                    if !rows.is_empty() {
                        present.insert((db, rel), rows);
                    }
                }
                if present.is_empty() {
                    break;
                }
                // Overestimate: delete every victim, then rederive from
                // what remains (cyclic self-support cannot save a row).
                for ((db, rel), rows) in &present {
                    store
                        .delete_where(db.as_str(), rel.as_str(), |v| rows.contains(v))
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
                let survivors = match self.rederive(
                    store,
                    &present,
                    &rule_stratum,
                    si,
                    &set.plans,
                    opts,
                    &mut stats,
                )? {
                    Some(s) => s,
                    None => return Ok(None),
                };
                let mut next_minus: DeltaTable = BTreeMap::new();
                for ((db, rel), rows) in present {
                    let kept = survivors.get(&(db.clone(), rel.clone()));
                    let mut gone: Vec<Value> = Vec::new();
                    for row in rows {
                        if kept.is_some_and(|k| k.contains(&row)) {
                            store
                                .insert(db.clone(), rel.clone(), row)
                                .map_err(|e| EvalError::Storage(e.to_string()))?;
                        } else {
                            gone.push(row);
                        }
                    }
                    if !gone.is_empty() {
                        next_minus.insert((db, rel), gone);
                    }
                }
                if next_minus.is_empty() {
                    break;
                }
                for ((db, rel), rows) in &next_minus {
                    carry_minus
                        .entry((db.clone(), rel.clone()))
                        .or_default()
                        .extend(rows.iter().cloned());
                    out.minus
                        .entry((db.clone(), rel.clone()))
                        .or_default()
                        .extend(rows.iter().cloned());
                }
                pend_plus = BTreeMap::new();
                pend_minus = next_minus;
            }
            // --- insert pass: seeded semi-naive fixpoint -------------
            // Deletions are seeded as *coarse* patterns: a rule reading a
            // shrunk relation through negation may now derive new rows,
            // and only a full evaluation can find them.
            let seed = DeltaLog {
                rels: carry_plus.clone(),
                coarse: carry_minus
                    .keys()
                    .map(|(db, rel)| PredPat { db: Some(db.clone()), rel: Some(rel.clone()) })
                    .collect(),
                new_rels: Vec::new(),
            };
            let mut accum = DeltaLog::default();
            self.run_stratum(
                store,
                stratum,
                opts,
                &set.plans,
                &set.variants,
                &set.delta_ok,
                &mut stats,
                Some(seed),
                Some(&mut accum),
            )?;
            if !accum.coarse.is_empty() {
                // The pass produced writes the delta model cannot carry
                // (nested sets, whole-db effects): hand over to repair.
                return Ok(None);
            }
            for ((db, rel), rows) in accum.rels {
                carry_plus
                    .entry((db.clone(), rel.clone()))
                    .or_default()
                    .extend(rows.iter().cloned());
                out.plus.entry((db, rel)).or_default().extend(rows);
            }
            // --- schematic GC: deleted-from, now-empty, data-dependent -
            let catalog = self.derived_catalog();
            let deleted_rels: Vec<(Name, Name)> = carry_minus.keys().cloned().collect();
            for (db, rel) in deleted_rels {
                let Ok(set) = store.relation(db.as_str(), rel.as_str()) else { continue };
                if !set.is_empty() || !catalog.covers_relation(db.as_str(), rel.as_str()) {
                    continue;
                }
                let constant_head = self
                    .head_pats
                    .iter()
                    .any(|p| p.db.as_ref() == Some(&db) && p.rel.as_ref() == Some(&rel));
                if constant_head {
                    continue; // constant-head skeletons exist even empty
                }
                store
                    .drop_relation(db.as_str(), rel.as_str())
                    .map_err(|e| EvalError::Storage(e.to_string()))?;
                out.gcd.push(PredPat { db: Some(db.clone()), rel: Some(rel.clone()) });
                m.schematic_gcs += 1;
            }
        }
        out.gcd.sort();
        out.gcd.dedup();
        stats.new_relations.sort();
        stats.new_relations.dedup();
        m.delta_rules_run = stats.rule_evals;
        let touched: BTreeSet<&(Name, Name)> = out.plus.keys().chain(out.minus.keys()).collect();
        m.views_maintained = touched.len()
            + out
                .gcd
                .iter()
                .filter(|p| match (&p.db, &p.rel) {
                    (Some(db), Some(rel)) => !touched.contains(&(db.clone(), rel.clone())),
                    _ => true,
                })
                .count();
        stats.maintenance = m;
        out.stats = stats;
        Ok(Some(out))
    }

    /// One deletion-cascade round's victim over-approximation: evaluates
    /// every triggered rule's victim queries against the *pre-round*
    /// store and extracts candidate head facts. `Ok(None)` = a triggered
    /// occurrence had a shape the rewriter cannot handle (bail).
    #[allow(clippy::too_many_arguments)]
    fn find_victims(
        &self,
        store: &Store,
        woken: &[usize],
        pend_plus: &DeltaTable,
        pend_minus: &DeltaTable,
        opts: EvalOptions,
        stats: &mut FixpointStats,
    ) -> EvalResult<Option<DeltaTable>> {
        // Collect (rule, changed rel, polarity) triggers first; if none,
        // skip the old-store restoration entirely.
        let mut triggers: Vec<(usize, Name, Name, bool)> = Vec::new();
        for &ri in woken {
            for br in &self.body_refs[ri] {
                let pend = if br.negated { pend_plus } else { pend_minus };
                for (db, rel) in pend.keys() {
                    let concrete = PredPat { db: Some(db.clone()), rel: Some(rel.clone()) };
                    if br.pat.overlaps(&concrete) {
                        triggers.push((ri, db.clone(), rel.clone(), br.negated));
                    }
                }
            }
        }
        triggers.sort();
        triggers.dedup();
        if triggers.is_empty() {
            return Ok(Some(BTreeMap::new()));
        }
        // Pre-round store: O(1) universe clone with the pending frontier
        // restored (Δ⁺ removed, Δ⁻ re-added) so a derivation whose *other*
        // premises also changed this round is still found, plus marker
        // databases holding the delta rows the victim queries scan.
        let mut old = Store::from_universe(store.universe().clone())
            .map_err(|e| EvalError::Storage(e.to_string()))?;
        for ((db, rel), rows) in pend_plus {
            if old.relation(db.as_str(), rel.as_str()).is_ok() {
                old.delete_where(db.as_str(), rel.as_str(), |v| rows.contains(v))
                    .map_err(|e| EvalError::Storage(e.to_string()))?;
            }
        }
        for ((db, rel), rows) in pend_minus {
            if old.relation(db.as_str(), rel.as_str()).is_err() {
                old.create_relation(db.clone(), rel.clone())
                    .map_err(|e| EvalError::Storage(e.to_string()))?;
            }
            for row in rows {
                old.insert(db.clone(), rel.clone(), row.clone())
                    .map_err(|e| EvalError::Storage(e.to_string()))?;
            }
        }
        let mut marker_filled: BTreeSet<(Name, Name)> = BTreeSet::new();
        for (_, db, rel, negated) in &triggers {
            if !marker_filled.insert((db.clone(), rel.clone())) {
                continue;
            }
            let mdb = marker_db(db);
            old.create_relation(mdb.clone(), rel.clone())
                .map_err(|e| EvalError::Storage(e.to_string()))?;
            let rows = if *negated { pend_plus.get(&(db.clone(), rel.clone())) } else { None }
                .or_else(|| pend_minus.get(&(db.clone(), rel.clone())))
                .or_else(|| pend_plus.get(&(db.clone(), rel.clone())));
            if let Some(rows) = rows {
                for row in rows {
                    old.insert(mdb.clone(), rel.clone(), row.clone())
                        .map_err(|e| EvalError::Storage(e.to_string()))?;
                }
            }
        }
        let mut victims: BTreeMap<(Name, Name), Vec<Value>> = BTreeMap::new();
        let ev = Evaluator::new(&old, opts);
        for (ri, db, rel, negated) in &triggers {
            let rule = &self.rules[*ri];
            let Some(bodies) = victim_bodies(rule, db, rel, *negated) else {
                return Ok(None);
            };
            for body in bodies {
                stats.rule_evals += 1;
                stats.full_evals += 1;
                // A moding break the placement heuristic missed is a shape
                // the rewriter cannot handle: bail to the refresh path.
                let substs = match ev.eval_items(&body, vec![Subst::new()]) {
                    Ok(s) => s,
                    Err(EvalError::Uninstantiated(_)) => return Ok(None),
                    Err(e) => return Err(e),
                };
                for s in &substs {
                    let Some((vdb, vrel, row)) = head_fact(&rule.head, s) else {
                        return Ok(None);
                    };
                    victims.entry((vdb, vrel)).or_default().push(row);
                }
            }
        }
        for rows in victims.values_mut() {
            rows.sort();
            rows.dedup();
        }
        Ok(Some(victims))
    }

    /// Exact rederivation of deletion-cascade victims: every rule whose
    /// head overlaps a victim relation re-runs in full against the
    /// post-deletion store; rows it still derives survive. `Ok(None)` =
    /// an overlapping rule cannot be head-extracted or lives in a later
    /// stratum (bail).
    #[allow(clippy::too_many_arguments)]
    fn rederive(
        &self,
        store: &Store,
        present: &DeltaTable,
        rule_stratum: &[usize],
        current_stratum: usize,
        plans: &[Option<std::sync::Arc<crate::physical::CompiledItems>>],
        opts: EvalOptions,
        stats: &mut FixpointStats,
    ) -> EvalResult<Option<RederivedRows>> {
        let victim_pats: Vec<PredPat> = present
            .keys()
            .map(|(db, rel)| PredPat { db: Some(db.clone()), rel: Some(rel.clone()) })
            .collect();
        let deriving: Vec<usize> = (0..self.rules.len())
            .filter(|&ri| victim_pats.iter().any(|p| self.head_pats[ri].overlaps(p)))
            .collect();
        if deriving.iter().any(|&ri| rule_stratum[ri] > current_stratum) {
            return Ok(None);
        }
        let mut survivors: BTreeMap<(Name, Name), BTreeSet<Value>> = BTreeMap::new();
        let ev = Evaluator::new(store, opts);
        for &ri in &deriving {
            stats.rule_evals += 1;
            stats.full_evals += 1;
            let substs = match &plans[ri] {
                Some(plan) => ev.eval_compiled(plan, vec![Subst::new()])?,
                None => ev.eval_items(&self.rules[ri].body, vec![Subst::new()])?,
            };
            for s in &substs {
                let Some((db, rel, row)) = head_fact(&self.rules[ri].head, s) else {
                    return Ok(None);
                };
                let key = (db, rel);
                if present.get(&key).is_some_and(|rows| rows.contains(&row)) {
                    survivors.entry(key).or_default().insert(row);
                }
            }
        }
        Ok(Some(survivors))
    }
}

/// Whether a rule's head contains a scalar (`=`) write (not maintainable).
fn head_is_scalar_rule(rule: &Rule) -> bool {
    fn scan(e: &Expr) -> bool {
        match e {
            Expr::Atomic(..) => true,
            Expr::Tuple(fields) => fields.iter().any(|f| scan(&f.expr)),
            _ => false,
        }
    }
    scan(&rule.head)
}

/// Extracts the concrete `(db, rel, row)` a head produces under one
/// grounding substitution. `None` for head shapes the maintenance pass
/// cannot decompose (multi-field heads, non-set leaves, unbindable
/// attribute variables) — the caller bails to the refresh path.
fn head_fact(head: &Expr, subst: &Subst) -> Option<(Name, Name, Value)> {
    let Expr::Tuple(fields) = head else { return None };
    let [f] = fields.as_slice() else { return None };
    let db = attr_name(&f.attr, subst)?;
    let Expr::Tuple(inner) = &f.expr else { return None };
    let [g] = inner.as_slice() else { return None };
    let rel = attr_name(&g.attr, subst)?;
    let Expr::Set(row) = &g.expr else { return None };
    let row = materialize(row, subst).ok()?;
    Some((db, rel, row))
}

/// Resolves a head attribute position to a name under a substitution,
/// with the same displayable-atom coercion as `make_true`.
fn attr_name(attr: &AttrTerm, subst: &Subst) -> Option<Name> {
    match attr {
        AttrTerm::Const(n) => Some(n.clone()),
        AttrTerm::Var(v) => match subst.get(v)? {
            Value::Atom(Atom::Str(n)) => Some(n.clone()),
            Value::Atom(a) if !a.is_null() => Some(Name::new(a.to_string())),
            _ => None,
        },
    }
}

/// Whether a rewritten marker scan can ground itself when evaluated
/// first: every atomic either unifies (`=` binds its variable from the
/// scanned row) or compares against a fully-ground term. A non-equality
/// comparison with a variable (or arithmetic) operand needs bindings
/// from *other* subgoals, so the scan cannot lead the join.
fn self_grounding(expr: &Expr) -> bool {
    match expr {
        Expr::Atomic(op, term) => match term {
            Term::Const(_) => true,
            Term::Var(_) => *op == RelOp::Eq,
            Term::Arith(..) => false,
        },
        Expr::Tuple(fields) => fields.iter().all(|f| self_grounding(&f.expr)),
        Expr::Not(inner) | Expr::Set(inner) => self_grounding(inner),
        Expr::Constraint(..) => false,
        Expr::Epsilon => true,
        _ => false,
    }
}

/// Builds the victim-query bodies for one `(rule, changed relation,
/// polarity)` trigger: one body per matching subgoal occurrence, each
/// being the rule body with that occurrence replaced by a *positive* scan
/// over the marker database holding the round's delta rows (placed first,
/// so the tiny Δ relation drives the join). `None` = an occurrence sits
/// in a shape the rewriter cannot handle.
fn victim_bodies(rule: &Rule, db: &Name, rel: &Name, negated: bool) -> Option<Vec<Vec<Expr>>> {
    let mdb = marker_db(db);
    // (item index, field index, inner index or None for db-level `¬`)
    let mut occurrences: Vec<(usize, usize, Option<usize>)> = Vec::new();
    for (ii, item) in rule.body.iter().enumerate() {
        match item {
            Expr::Tuple(fields) => {
                for (fi, f) in fields.iter().enumerate() {
                    let fdb = match &f.attr {
                        AttrTerm::Const(n) => Some(n),
                        AttrTerm::Var(_) => None,
                    };
                    let db_overlaps = fdb.is_none_or(|d| d == db);
                    match &f.expr {
                        Expr::Tuple(inner) => {
                            for (gi, g) in inner.iter().enumerate() {
                                let grel = match &g.attr {
                                    AttrTerm::Const(n) => Some(n),
                                    AttrTerm::Var(_) => None,
                                };
                                let gneg = matches!(g.expr, Expr::Not(_));
                                if gneg == negated && db_overlaps && grel.is_none_or(|r| r == rel) {
                                    // bail on a variable db position
                                    fdb?;
                                    occurrences.push((ii, fi, Some(gi)));
                                }
                            }
                        }
                        Expr::Not(inner) => match inner.as_ref() {
                            Expr::Tuple(inner_fields) => {
                                for g in inner_fields {
                                    let grel = match &g.attr {
                                        AttrTerm::Const(n) => Some(n),
                                        AttrTerm::Var(_) => None,
                                    };
                                    if negated && db_overlaps && grel.is_none_or(|r| r == rel) {
                                        if fdb.is_none() || inner_fields.len() != 1 {
                                            return None;
                                        }
                                        occurrences.push((ii, fi, None));
                                    }
                                }
                            }
                            _ => {
                                if negated && db_overlaps {
                                    return None;
                                }
                            }
                        },
                        _ => {
                            // Fallback reference `{db, rel: None}` at the
                            // outer polarity: a matching trigger cannot be
                            // rewritten.
                            if !negated && db_overlaps {
                                return None;
                            }
                        }
                    }
                }
            }
            Expr::Not(_) | Expr::Set(_) => {
                // References inside whole-item negation/set shapes: check
                // whether the trigger could hide in here; if so, bail.
                let mut refs = Vec::new();
                crate::rules::collect_refs(item, false, &mut refs);
                let concrete = PredPat { db: Some(db.clone()), rel: Some(rel.clone()) };
                if refs.iter().any(|br| br.negated == negated && br.pat.overlaps(&concrete)) {
                    return None;
                }
            }
            _ => {}
        }
    }
    let mut bodies = Vec::new();
    for (ii, fi, gi) in occurrences {
        let mut body = rule.body.clone();
        let Expr::Tuple(fields) = &mut body[ii] else { unreachable!() };
        let f = &fields[fi];
        let marker_item = match gi {
            Some(gi) => {
                let Expr::Tuple(inner) = &f.expr else { unreachable!() };
                let g = &inner[gi];
                let rewritten = Field {
                    sign: g.sign,
                    attr: g.attr.clone(),
                    expr: match &g.expr {
                        Expr::Not(x) => (**x).clone(),
                        other => other.clone(),
                    },
                };
                let marker = Expr::Tuple(vec![Field {
                    sign: None,
                    attr: AttrTerm::Const(mdb.clone()),
                    expr: Expr::Tuple(vec![rewritten]),
                }]);
                // Remove the replaced subgoal from the original field.
                let mut rest = inner.clone();
                rest.remove(gi);
                if rest.is_empty() {
                    fields.remove(fi);
                } else {
                    fields[fi].expr = Expr::Tuple(rest);
                }
                marker
            }
            None => {
                let Expr::Not(inner) = &f.expr else { unreachable!() };
                let Expr::Tuple(inner_fields) = inner.as_ref() else { unreachable!() };
                let g = inner_fields[0].clone();
                let marker = Expr::Tuple(vec![Field {
                    sign: None,
                    attr: AttrTerm::Const(mdb.clone()),
                    expr: Expr::Tuple(vec![g]),
                }]);
                fields.remove(fi);
                marker
            }
        };
        if let Expr::Tuple(fields) = &body[ii] {
            if fields.is_empty() {
                body.remove(ii);
            }
        }
        // The tiny Δ scan drives the join from the front — but only when
        // it can ground itself. A subgoal like `.clsPrice>P` compares
        // against a variable another subgoal binds, so hoisting it would
        // break the rule's moding; keep it at its original position
        // instead (anything it reads was bound before it in the source
        // order).
        let at = if self_grounding(&marker_item) { 0 } else { ii.min(body.len()) };
        body.insert(at, marker_item);
        bodies.push(body);
    }
    Some(bodies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleEngine;
    use idl_lang::{parse_statement, Statement};
    use idl_object::universe::stock_universe;

    fn rule(src: &str) -> Rule {
        match parse_statement(src).unwrap() {
            Statement::Rule(r) => r,
            _ => panic!("not a rule: {src}"),
        }
    }

    fn base_store() -> Store {
        Store::from_universe(stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    fn opts() -> EvalOptions {
        EvalOptions::default().with_threads(1).with_compile(true).with_semi_naive(true)
    }

    fn fingerprint(store: &Store) -> String {
        idl_storage::persist::to_json(store).unwrap()
    }

    /// Runs an update request against a store, returning its row diff.
    fn apply(store: &mut Store, src: &str) -> UpdateDelta {
        let Statement::Request(req) = parse_statement(src).unwrap() else { panic!() };
        let pre = store.universe().clone();
        let v = store.version();
        crate::request::run_request(
            store,
            &crate::program::ProgramRegistry::new(),
            &crate::rules::DerivedCatalog::empty(),
            &req,
            opts(),
        )
        .unwrap();
        let scopes: Vec<_> = store.changes_since(v).iter().map(|c| c.scope.clone()).collect();
        diff_update(&pre, store.universe(), &scopes).expect("row diff extractable")
    }

    /// The differential harness: maintain must land on the exact store a
    /// full rebuild produces.
    fn check_maintain(rules: Vec<Rule>, updates: &[&str]) -> MaintenanceStats {
        let engine = RuleEngine::new(rules).unwrap();
        let mut maintained = base_store();
        engine.materialize(&mut maintained, opts()).unwrap();
        let mut last = MaintenanceStats::default();
        for update in updates {
            let delta = apply(&mut maintained, update);
            let outcome = engine
                .maintain_cached(&mut maintained, &delta, opts(), None)
                .unwrap()
                .expect("maintainable");
            last = outcome.stats.maintenance.clone();

            // Reference: rebuild from the same base data.
            let mut reference = base_store();
            for done in updates.iter().take_while(|u| *u != update).chain([update]) {
                apply(&mut reference, done);
            }
            // Rebuild derived state from scratch.
            let mut fresh = Store::from_universe(reference.universe().clone()).unwrap();
            for db in engine.derived_databases() {
                if fresh.has_database(db.as_str()) {
                    let rels = fresh.relation_names(db.as_str()).unwrap();
                    for rel in rels {
                        fresh.drop_relation(db.as_str(), rel.as_str()).unwrap();
                    }
                }
            }
            engine.materialize(&mut fresh, opts()).unwrap();
            assert_eq!(
                fingerprint(&maintained),
                fingerprint(&fresh),
                "maintained ≠ rebuilt after {update}"
            );
        }
        last
    }

    #[test]
    fn insert_maintains_union_view() {
        let stats = check_maintain(
            vec![rule(
                ".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)",
            )],
            &["?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)"],
        );
        assert_eq!(stats.views_maintained, 1);
        assert!(stats.delta_rules_run >= 1);
    }

    #[test]
    fn delete_cascades_with_exact_rederivation() {
        // hp appears on two dates; deleting one quote must keep the other
        // derivation alive (rederive), deleting both must empty it.
        check_maintain(
            vec![rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)")],
            &[
                "?.euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
                "?.euter.r-(.date=3/4/85,.stkCode=hp,.clsPrice=62)",
            ],
        );
    }

    #[test]
    fn insert_through_negation_deletes_dependents() {
        // `only` holds stocks absent from ource; inserting a new ource
        // relation is a schema change (bails), but inserting a row into
        // an *existing* negated relation must delete dependent rows.
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".dbI.lone(.stk=S) <- .dbI.p(.stk=S), .chwab.r¬(.S>0)"),
        ];
        check_maintain(rules, &["?.chwab.r+(.date=9/9/99, .hp=1, .ibm=2)"]);
    }

    #[test]
    fn negated_comparison_against_body_variable_is_maintained() {
        // The negated subgoal compares against P, bound by the positive
        // subgoal: the victim rewrite must not hoist the Δ scan above
        // P's binding (it stays at its source position instead).
        let rules = vec![
            rule(".dbU.q(.stk=S,.clsPrice=P) <- .euter.r(.stkCode=S,.clsPrice=P)"),
            rule(
                ".dbHi.h(.stk=S,.clsPrice=P) <- .euter.r(.stkCode=S,.clsPrice=P), \
                 .dbU.q¬(.stk=S,.clsPrice>P)",
            ),
        ];
        check_maintain(
            rules,
            &[
                "?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=70)",
                "?.euter.r-(.date=3/9/85,.stkCode=hp,.clsPrice=70)",
            ],
        );
    }

    #[test]
    fn delete_through_negation_derives_new_rows() {
        // Deleting the last chwab row for a stock makes `lone` derive it.
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".dbI.lone(.stk=S) <- .dbI.p(.stk=S), .chwab.r¬(.S>0)"),
        ];
        check_maintain(rules, &["?.chwab.r-(.date=3/3/85)", "?.chwab.r-(.date=3/4/85)"]);
    }

    #[test]
    fn schematic_create_and_gc_roundtrip() {
        // A higher-order head derives one relation per stock: a new stock
        // materialises a relation (schematic create), retracting its only
        // quote GCs it again.
        let rules =
            vec![rule(".dbO.S(.date=D,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)")];
        let create =
            check_maintain(rules.clone(), &["?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)"]);
        assert_eq!(create.schematic_gcs, 0);
        let gc = check_maintain(
            rules,
            &[
                "?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)",
                "?.euter.r-(.date=3/9/85,.stkCode=sun,.clsPrice=7)",
            ],
        );
        assert_eq!(gc.schematic_gcs, 1, "{gc:?}");
    }

    #[test]
    fn scalar_heads_bail_to_refresh() {
        let rules = vec![rule(".agg.hi=P <- .euter.r(.stkCode=hp,.clsPrice=P)")];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        engine.materialize(&mut store, opts()).unwrap();
        let delta = apply(&mut store, "?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99)");
        let out = engine.maintain_cached(&mut store, &delta, opts(), None).unwrap();
        assert!(out.is_none(), "scalar heads cannot be maintained");
    }

    #[test]
    fn unrelated_strata_are_skipped() {
        let rules = vec![
            rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)"),
            rule(".dbI.q(.d=D) <- .chwab.r(.date=D)"),
        ];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        engine.materialize(&mut store, opts()).unwrap();
        let delta = apply(&mut store, "?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)");
        let out =
            engine.maintain_cached(&mut store, &delta, opts(), None).unwrap().expect("maintains");
        // Only the euter-reading rule ran; the chwab rule was skipped.
        assert!(out.stats.rules_skipped >= 1, "{:?}", out.stats);
        assert_eq!(out.stats.maintenance.views_maintained, 1, "{:?}", out.stats);
    }

    #[test]
    fn maintained_views_bookkeeping_applies_deltas() {
        let rules = vec![rule(".dbI.p(.stk=S) <- .euter.r(.stkCode=S)")];
        let engine = RuleEngine::new(rules).unwrap();
        let mut store = base_store();
        engine.materialize(&mut store, opts()).unwrap();
        let mut mv = MaintainedViews::recompute(&store, &engine.derived_catalog(), engine.rules());
        assert_eq!(mv.entry_count(), 1);
        assert_eq!(mv.views[0].rows, 2, "hp, ibm");
        assert!(mv.matches_rules(engine.rules()));
        let delta = apply(&mut store, "?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)");
        let out =
            engine.maintain_cached(&mut store, &delta, opts(), None).unwrap().expect("maintains");
        mv.apply(&out);
        assert_eq!(mv.views[0].rows, 3);
        assert!(!mv.matches_rules(&[rule(".x.y(.a=A) <- .euter.r(.stkCode=A)")]));
    }

    #[test]
    fn diff_update_bails_on_schema_changes() {
        let mut store = base_store();
        let pre = store.universe().clone();
        let v = store.version();
        // Creating a whole new relation slot is a schema change.
        store.create_relation("euter", "extra").unwrap();
        let scopes: Vec<_> = store.changes_since(v).iter().map(|c| c.scope.clone()).collect();
        assert!(diff_update(&pre, store.universe(), &scopes).is_none());
    }
}
