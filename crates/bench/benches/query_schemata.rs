//! B1 — the same query intention across the three schemata.
//!
//! §4.3's closing example: "did any stock ever close above T?" is one
//! relational query on `euter`, but needs attribute-name quantification on
//! `chwab` and relation-name quantification on `ource`. This bench
//! measures what that metadata iteration costs as data grows.
//!
//! Expected shape (DESIGN.md): chwab/ource cost more than euter (they
//! enumerate metadata), but stay within a small constant factor with the
//! planner on; all three scale roughly linearly in the data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_bench::{request, run_query, selective_threshold, size_label, stock_store, SIZES};
use idl_eval::EvalOptions;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let t = selective_threshold();
    let mut group = c.benchmark_group("B1_query_schemata");
    for &(stocks, days) in SIZES {
        let store = stock_store(stocks, days);
        let cases = [
            ("euter", format!("?.euter.r(.stkCode=S, .clsPrice>{t})")),
            ("chwab", format!("?.chwab.r(.S>{t})")),
            ("ource", format!("?.ource.S(.clsPrice>{t})")),
        ];
        for (schema, src) in &cases {
            let req = request(src);
            group.bench_with_input(
                BenchmarkId::new(*schema, size_label(stocks, days)),
                &req,
                |b, req| {
                    b.iter(|| black_box(run_query(&store, req, EvalOptions::default())));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);
