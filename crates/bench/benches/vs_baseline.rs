//! B6 — IDL vs the first-order baseline on first-order-expressible queries.
//!
//! On the `euter` schema (stock codes as data) the ">T" query is plain
//! first-order; both engines can run it. The gap measures the *overhead of
//! the higher-order machinery* on queries that do not need it.
//!
//! Expected shape: IDL within a modest factor of the positional Datalog
//! engine at equal work; with indexes on IDL can win on selective probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_baseline::encode::{encode, fo_above_query, run_above_binding, Schema};
use idl_bench::{request, run_query, selective_threshold, size_label, stock_store, SIZES};
use idl_eval::EvalOptions;
use idl_workload::stock::{as_baseline_quotes, generate_quotes, StockConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let t = selective_threshold();
    let mut group = c.benchmark_group("B6_vs_baseline");
    for &(stocks, days) in SIZES {
        let label = size_label(stocks, days);
        // IDL side
        let store = stock_store(stocks, days);
        let idl_req = request(&format!("?.euter.r(.stkCode=S, .clsPrice>{t})"));
        group.bench_function(BenchmarkId::new("idl_indexed", &label), |b| {
            b.iter(|| black_box(run_query(&store, &idl_req, EvalOptions::default())))
        });
        group.bench_function(BenchmarkId::new("idl_naive", &label), |b| {
            b.iter(|| black_box(run_query(&store, &idl_req, EvalOptions::naive())))
        });

        // first-order side (same quotes, positional encoding)
        let quotes = as_baseline_quotes(&generate_quotes(&StockConfig::sized(stocks, days)));
        let db = encode(Schema::Euter, &quotes);
        let prog = fo_above_query(Schema::Euter, &quotes, t);
        group.bench_function(BenchmarkId::new("fo_datalog", &label), |b| {
            b.iter(|| black_box(run_above_binding(&db, &prog).len()))
        });

        // sanity: equal answers
        let idl_n = run_query(&store, &idl_req, EvalOptions::default());
        let fo_n = run_above_binding(&db, &prog).len();
        assert_eq!(idl_n, fo_n, "differential check at {label}");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);
