//! B11 — parallel intra-stratum fixpoint ablation.
//!
//! Materialises the sharded two-stratum view program (one independent
//! rule per shard per stratum; stratum 2 is join-heavy per rule) with
//! 1 / 2 / 4 fixpoint worker threads. Differential correctness — identical
//! derived contents across thread counts — is asserted as a side effect.
//!
//! Expected shape: near-linear speedup while `threads ≤ shards` and the
//! per-rule join work dominates the sequential merge (Amdahl); threads=1
//! is the exact legacy sequential schedule, so its numbers double as the
//! pre-parallelism baseline. On a single-core host (check `nproc`) all
//! thread counts necessarily coincide modulo scheduler overhead — the
//! speedup needs real parallelism to materialise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_eval::EvalOptions;
use idl_storage::Store;
use idl_workload::stock::{generate_sharded, sharded_union_rules, ShardedStockConfig};
use std::hint::black_box;
use std::time::Duration;

const SHARDS: usize = 16;
const STOCKS: usize = 8;
const DAYS: usize = 40;
const THREADS: &[usize] = &[1, 2, 4];

fn fresh_engine(universe: &idl_object::Value, rules: &str, threads: usize) -> Engine {
    let store = Store::from_universe(universe.clone()).expect("sharded universe is a tuple");
    let mut e = Engine::from_store(store);
    let opts = e.options().rebuild().threads(threads).build();
    e.set_options(opts);
    e.add_rules(rules).expect("sharded rules install");
    e
}

fn derived_fingerprint(e: &Engine) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for db in ["dbU", "dbHi"] {
        for rel in e.store().relation_names(db).expect("derived db exists") {
            let len = e.store().relation(db, rel.as_str()).expect("derived relation").len();
            out.push((format!("{db}.{rel}"), len));
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let cfg = ShardedStockConfig::sized(SHARDS, STOCKS, DAYS);
    let universe = generate_sharded(&cfg);
    let rules = sharded_union_rules(&cfg);

    // differential check: every thread count derives the same contents
    let mut reference: Option<(Vec<(String, usize)>, String)> = None;
    for &t in THREADS {
        let mut e = fresh_engine(&universe, &rules, t);
        let stats = e.refresh_views().expect("fixpoint converges");
        assert_eq!(stats.strata.len(), 2);
        let json = idl_storage::persist::to_json(e.store()).expect("store serialises");
        let fp = (derived_fingerprint(&e), json);
        match &reference {
            None => reference = Some(fp),
            Some(r) => {
                assert_eq!(fp.0, r.0, "derived contents differ at {t} threads");
                assert_eq!(fp.1, r.1, "snapshot differs at {t} threads");
            }
        }
    }

    let mut group = c.benchmark_group("B11_parallel_fixpoint");
    for &t in THREADS {
        group.bench_function(BenchmarkId::new("refresh", format!("{t}thr")), |b| {
            b.iter_batched(
                || fresh_engine(&universe, &rules, t),
                |mut e| black_box(e.refresh_views().unwrap().facts_added),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // how much of the wall time the widest stratum spends per worker —
    // the 1-thread leg isolates the query itself from any pool residue
    for &t in &[1usize, 4] {
        group.bench_function(BenchmarkId::new("query_after_refresh", format!("{t}thr")), |b| {
            let mut e = fresh_engine(&universe, &rules, t);
            e.refresh_views().unwrap();
            let opts = EvalOptions::default();
            let req = idl_bench::request("?.dbU.q(.stk=S, .clsPrice>100)");
            b.iter(|| black_box(idl_bench::run_query(e.store(), &req, opts)))
        });
    }
    // small-delta refresh: one new quote lands in one feed while
    // maintenance is off, then the staleness-driven repair path absorbs
    // it. With maintenance re-enabled the repair diffs against the
    // freshness snapshot and runs the delta pass — strata with no
    // overlapping deltas are skipped entirely — instead of the
    // drop-and-rebuild that used to ~match a full refresh here.
    for &t in &[1usize, 4] {
        group.bench_function(BenchmarkId::new("refresh_incremental", format!("{t}thr")), |b| {
            b.iter_batched(
                || {
                    let mut e = fresh_engine(&universe, &rules, t);
                    let opts = e.options().rebuild().auto_refresh(false).maintain(false).build();
                    e.set_options(opts);
                    e.refresh_views().unwrap();
                    e.update("?.feed00.r+(.date=9/9/99, .stkCode=f0099, .clsPrice=500)").unwrap();
                    let opts = e.options().rebuild().maintain(true).build();
                    e.set_options(opts);
                    e
                },
                |mut e| black_box(e.refresh_views_if_stale().unwrap().facts_added),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // write-path maintenance: the same one-quote update absorbed inside
    // the write itself (`maintain_update`), and a query against the
    // already-maintained views (`query_maintained`) — together the
    // update-then-read cost that RefreshViews + query used to pay.
    {
        let mut e = fresh_engine(&universe, &rules, 1);
        e.refresh_views().unwrap();
        e.update("?.feed00.r+(.date=9/9/99, .stkCode=f0099, .clsPrice=500)").unwrap();
        assert!(e.views_fresh_now(), "maintenance must absorb the bench update");
    }
    for &t in &[1usize, 4] {
        group.bench_function(BenchmarkId::new("maintain_update", format!("{t}thr")), |b| {
            b.iter_batched(
                || {
                    let mut e = fresh_engine(&universe, &rules, t);
                    e.refresh_views().unwrap();
                    e
                },
                |mut e| {
                    e.update("?.feed00.r+(.date=9/9/99, .stkCode=f0099, .clsPrice=500)").unwrap();
                    black_box(e.last_fixpoint_stats().maintenance.views_maintained)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("query_maintained", format!("{t}thr")), |b| {
            let mut e = fresh_engine(&universe, &rules, t);
            e.refresh_views().unwrap();
            e.update("?.feed00.r+(.date=9/9/99, .stkCode=f0099, .clsPrice=500)").unwrap();
            assert!(e.views_fresh_now());
            let opts = EvalOptions::default();
            let req = idl_bench::request("?.dbU.q(.stk=S, .clsPrice>100)");
            b.iter(|| black_box(idl_bench::run_query(e.store(), &req, opts)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
