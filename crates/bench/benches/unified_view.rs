//! B3 — unified view materialisation (§6).
//!
//! Cost of deriving `dbI.p` — the database-transparency view over all
//! three schemata — as a function of (#stocks × #days). Per-schema
//! contribution measured by materialising single-source variants.
//!
//! Expected shape: roughly linear in total quote count; the chwab source
//! costs the most per fact (attribute enumeration per row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_bench::{size_label, stock_store, SIZES};
use std::hint::black_box;
use std::time::Duration;

const FROM_EUTER: &str =
    ".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;";
const FROM_CHWAB: &str =
    ".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P), S != date ;";
const FROM_OURCE: &str = ".dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P) ;";

const THREADS: &[usize] = &[1, 4];

/// One-off report of the memoized plan cache's behaviour on this
/// workload: the first refresh misses once per rule body, every later
/// refresh hits — printed so bench runs record the hit rate alongside
/// the timings.
fn report_plan_cache(rules: &str) {
    let mut e = Engine::from_store(stock_store(10, 50));
    e.add_rules(rules).unwrap();
    let cold = e.refresh_views().unwrap();
    let warm = e.refresh_views().unwrap();
    let cache = e.plan_cache();
    let total = cache.hits() + cache.misses();
    println!(
        "B3 plan cache: cold refresh compiled {} plans ({} misses), warm refresh {} hits; \
         engine hit rate {}/{} ({:.0}%)",
        cold.plans_compiled,
        cold.plan_cache_misses,
        warm.plan_cache_hits,
        cache.hits(),
        total,
        100.0 * cache.hits() as f64 / total.max(1) as f64
    );
}

fn bench(c: &mut Criterion) {
    report_plan_cache(&format!("{FROM_EUTER}{FROM_CHWAB}{FROM_OURCE}"));
    let mut group = c.benchmark_group("B3_unified_view");
    for &(stocks, days) in SIZES {
        let variants: &[(&str, String)] = &[
            ("all_sources", format!("{FROM_EUTER}{FROM_CHWAB}{FROM_OURCE}")),
            ("euter_only", FROM_EUTER.to_string()),
            ("chwab_only", FROM_CHWAB.to_string()),
            ("ource_only", FROM_OURCE.to_string()),
        ];
        for (name, rules) in variants {
            // the threads axis only matters where several rules share a
            // stratum — sweep it on the 3-rule union, pin single-rule
            // variants to the sequential path
            let threads: &[usize] = if *name == "all_sources" { THREADS } else { &[1] };
            for &t in threads {
                let label = if threads.len() > 1 {
                    format!("{}_{t}thr", size_label(stocks, days))
                } else {
                    size_label(stocks, days)
                };
                group.bench_function(BenchmarkId::new(*name, label), |b| {
                    b.iter_batched(
                        || {
                            let mut e = Engine::from_store(stock_store(stocks, days));
                            let opts = e.options().rebuild().threads(t).build();
                            e.set_options(opts);
                            e.add_rules(rules).unwrap();
                            e
                        },
                        |mut e| black_box(e.refresh_views().unwrap().facts_added),
                        criterion::BatchSize::LargeInput,
                    )
                });
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
