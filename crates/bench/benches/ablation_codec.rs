//! B17 — codec ablation: what the binary codec and delta checkpoints
//! buy on the durable write path.
//!
//! Two groups, both over the 40×150 stock universe on a [`SimVfs`] (no
//! device latency — the numbers isolate encoding and replay work):
//!
//! * **Checkpoint latency** — one small update then `checkpoint()`,
//!   under three configurations:
//!   - `full_json`    — the legacy wrapper, whole universe per
//!     checkpoint (the pre-codec behaviour);
//!   - `full_binary`  — binary codec, `CheckpointPolicy::Full` (the
//!     encoding win alone);
//!   - `delta_binary` — binary codec, auto policy with an effectively
//!     unbounded chain (the steady-state delta: only the dirtied
//!     relation is encoded).
//! * **Recovery vs chain length** — `DurableEngine::open` against a
//!   directory holding a binary base, a delta chain of {0, 4, 8}
//!   members, and a one-record log tail. The chain replay is the price
//!   delta checkpoints charge at open; it should stay small next to the
//!   base decode.
//!
//! Expected shape: `full_binary` beats `full_json` by the encode ratio
//! (the universe dominates), `delta_binary` beats both by orders of
//! magnitude (work proportional to the dirty slot, not the universe),
//! and recovery grows mildly with chain length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::durable::{CheckpointPolicy, DurabilityOptions, DurableEngine, SyncPolicy};
use idl::{Engine, FaultPlan, SimVfs, SnapshotCodec, Vfs};
use idl_bench::stock_engine;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const STOCKS: usize = 40;
const DAYS: usize = 150;

fn opts(codec: SnapshotCodec, checkpoint: CheckpointPolicy) -> DurabilityOptions {
    DurabilityOptions { codec, checkpoint, sync: SyncPolicy::Never, ..DurabilityOptions::default() }
}

/// An open durable engine over a fresh in-memory vfs, seeded with the
/// stock universe and a full base checkpoint already on disk.
fn seeded(codec: SnapshotCodec, checkpoint: CheckpointPolicy) -> DurableEngine {
    let vfs: Arc<dyn Vfs> = Arc::new(SimVfs::new(FaultPlan::none(0)));
    let mut d = DurableEngine::open_with_vfs("/b17", vfs, opts(codec, checkpoint), |e| {
        *e = stock_engine(STOCKS, DAYS);
        Ok(())
    })
    .expect("durable engine opens");
    d.update("?.db.touch+(.k=0)").expect("seed update");
    d.checkpoint().expect("base checkpoint");
    d
}

fn bench_checkpoint(c: &mut Criterion) {
    let label = format!("{STOCKS}stk_x_{DAYS}d");
    let mut group = c.benchmark_group("B17_codec_checkpoint");
    let modes: &[(&str, SnapshotCodec, CheckpointPolicy)] = &[
        ("full_json", SnapshotCodec::Json, CheckpointPolicy::Full),
        ("full_binary", SnapshotCodec::Binary, CheckpointPolicy::Full),
        // a chain cap no run ever reaches: every measured checkpoint is
        // a steady-state delta, never a fold-back into a full base
        ("delta_binary", SnapshotCodec::Binary, CheckpointPolicy::Auto { max_chain: 1 << 30 }),
    ];
    for &(name, codec, policy) in modes {
        group.bench_function(BenchmarkId::new(name, &label), |b| {
            let mut d = seeded(codec, policy);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                d.update(&format!("?.db.touch+(.k={i})")).expect("update");
                black_box(d.checkpoint().expect("checkpoint"))
            })
        });
    }
    group.finish();
}

/// A vfs holding base + `chain` deltas + a one-record log tail.
fn chained_vfs(chain: usize) -> Arc<SimVfs> {
    let vfs = Arc::new(SimVfs::new(FaultPlan::none(0)));
    let v: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
    let policy = CheckpointPolicy::Auto { max_chain: chain.max(1) };
    let mut d = DurableEngine::open_with_vfs("/b17", v, opts(SnapshotCodec::Binary, policy), |e| {
        *e = stock_engine(STOCKS, DAYS);
        Ok(())
    })
    .expect("durable engine opens");
    d.update("?.db.touch+(.k=0)").expect("seed update");
    d.checkpoint().expect("base checkpoint");
    for i in 1..=chain {
        d.update(&format!("?.db.touch+(.k={i})")).expect("chain update");
        d.checkpoint().expect("delta checkpoint");
    }
    assert_eq!(d.durability_stats().chain_len as usize, chain, "chain built as planned");
    d.update("?.db.touch+(.k=999)").expect("tail update");
    drop(d);
    vfs
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("B17_codec_recovery");
    for chain in [0usize, 4, 8] {
        let vfs = chained_vfs(chain);
        group.bench_function(BenchmarkId::new("open", format!("chain{chain}")), |b| {
            b.iter(|| {
                let v: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
                let d = DurableEngine::open_with_vfs(
                    "/b17",
                    v,
                    opts(SnapshotCodec::Binary, CheckpointPolicy::default()),
                    |_: &mut Engine| Ok(()),
                )
                .expect("recovery opens");
                let stats = d.durability_stats();
                assert_eq!(stats.chain_len as usize, chain, "whole chain adopted");
                assert_eq!(stats.records_recovered, 1, "only the tail replays");
                black_box(stats.chain_len)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_checkpoint, bench_recovery
}
criterion_main!(benches);
