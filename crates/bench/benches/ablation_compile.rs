//! B12 — compile ablation (plan IR vs tree walk, cold vs warm cache).
//!
//! Two axes over the same workloads:
//!
//! * **query path** — the E1-style battery evaluated `interpreted`
//!   (tree walk), `compiled_cold` (compile on every call, no cache) and
//!   `compiled_warm` (memoized [`PlanCache`], compile amortised away);
//! * **view path** — materialising the unified-view program with the
//!   interpreter, with per-refresh compilation, and with a warm cache
//!   that survives refreshes.
//!
//! Expected shape: warm ≈ cold ≥ interpreted on scan-heavy inputs
//! (compilation is cheap — a few µs per body — so the cache matters only
//! for tiny, frequent requests); all three agree exactly (asserted).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_bench::{request, run_query, size_label, stock_store, SIZES};
use idl_eval::rules::RuleEngine;
use idl_eval::{EvalOptions, Evaluator, PlanCache};
use idl_lang::{parse_program, Statement};
use std::hint::black_box;
use std::time::Duration;

const STOCKS: usize = 20;
const DAYS: usize = 100;

const VIEW_RULES: &str = "
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P), S != date ;
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P) ;
";

fn view_program() -> RuleEngine {
    let rules: Vec<_> = parse_program(VIEW_RULES)
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            other => panic!("expected a rule, got {other}"),
        })
        .collect();
    RuleEngine::new(rules).unwrap()
}

fn bench_queries(c: &mut Criterion) {
    let store = stock_store(STOCKS, DAYS);
    let battery = [
        ("selective_eq", "?.euter.r(.clsPrice>100, .stkCode=stk003, .date=D)"),
        ("ho_attr_scan", "?.chwab.r(.S>180)"),
        ("join", "?.euter.r(.stkCode=S,.clsPrice=P), .ource.S(.clsPrice=P)"),
    ];
    let mut group = c.benchmark_group("B12_ablation_compile");
    for (name, src) in battery {
        let req = request(src);
        let interpreted = EvalOptions::default().with_compile(false);
        let compiled = EvalOptions::default().with_compile(true);
        let reference = run_query(&store, &req, interpreted);
        assert_eq!(run_query(&store, &req, compiled), reference, "{name}");

        group.bench_function(BenchmarkId::new(name, "interpreted"), |b| {
            b.iter(|| black_box(run_query(&store, &req, interpreted)))
        });
        // `eval_items` with compile on recompiles per call — the cold path.
        group.bench_function(BenchmarkId::new(name, "compiled_cold"), |b| {
            b.iter(|| black_box(run_query(&store, &req, compiled)))
        });
        // Warm path: the memoized cache hands back the same Arc'd plan.
        let mut cache = PlanCache::new();
        let plan = cache.get_or_compile(&req.items, compiled).unwrap();
        group.bench_function(BenchmarkId::new(name, "compiled_warm"), |b| {
            let ev = Evaluator::new(&store, compiled);
            b.iter(|| {
                black_box(ev.eval_compiled(&plan, vec![idl_eval::Subst::new()]).unwrap().len())
            })
        });
    }
    group.finish();
}

fn bench_views(c: &mut Criterion) {
    let program = view_program();
    let mut group = c.benchmark_group("B12_ablation_compile_views");
    for &(stocks, days) in SIZES {
        let configs: &[(&str, bool, bool)] = &[
            ("interpreted", false, false),
            ("compiled_cold", true, false),
            ("compiled_warm", true, true),
        ];
        for &(name, compile, warm) in configs {
            // A warm cache persists across refreshes (as in `Engine`);
            // cold compiles every body on every refresh.
            let mut cache = PlanCache::new();
            if warm {
                let mut store = stock_store(stocks, days);
                program
                    .materialize_cached(&mut store, EvalOptions::default(), None, Some(&mut cache))
                    .unwrap();
            }
            group.bench_function(BenchmarkId::new(name, size_label(stocks, days)), |b| {
                b.iter_batched(
                    || stock_store(stocks, days),
                    |mut store| {
                        let opts = EvalOptions::default().with_compile(compile);
                        let cache = compile.then_some(&mut cache);
                        let stats =
                            program.materialize_cached(&mut store, opts, None, cache).unwrap();
                        if warm {
                            assert_eq!(stats.plans_compiled, 0, "warm cache recompiled");
                        }
                        black_box(stats.facts_added)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_queries, bench_views
}
criterion_main!(benches);
