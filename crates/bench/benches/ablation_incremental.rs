//! B10 — incremental vs full view refresh.
//!
//! After a single point update to one base relation, the engine can either
//! rebuild every view (full) or re-derive only the rules transitively
//! affected by the journalled change (incremental, the default). The
//! workload installs the two-level mapping plus an *independent* view
//! family over an unrelated database, so incremental mode has something to
//! skip.
//!
//! Expected shape: incremental ≤ full everywhere; the gap grows with the
//! amount of unrelated view state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::{Engine, EngineOptions};
use idl_bench::stock_store;
use std::hint::black_box;
use std::time::Duration;

const B10_SIZES: &[(usize, usize)] = &[(5, 20), (10, 50), (20, 100)];

fn engine(stocks: usize, days: usize, incremental: bool) -> Engine {
    let mut e = Engine::from_store(stock_store(stocks, days));
    e.set_options(EngineOptions { incremental_refresh: incremental, ..Default::default() });
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    // an unrelated view family the point update never touches
    e.store_mut().insert("audit", "log", idl_object::tuple! { id: 0i64 }).unwrap();
    e.add_rules(".vAudit.ids(.id=I) <- .audit.log(.id=I) ;").unwrap();
    e.refresh_views().unwrap();
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B10_ablation_incremental");
    for &(stocks, days) in B10_SIZES {
        let label = format!("{stocks}stk_x_{days}d");
        for (mode, incremental) in [("incremental", true), ("full", false)] {
            // hot path: the update hits euter, which feeds the (fully
            // connected) two-level mapping — almost everything is dirty.
            group.bench_function(BenchmarkId::new(format!("{mode}_hot"), &label), |b| {
                let mut e = engine(stocks, days, incremental);
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    e.update(&format!("?.euter.r+(.date=3/3/85,.stkCode=bench,.clsPrice={i})"))
                        .unwrap();
                    let a = e.query("?.dbI.p(.stk=bench, .clsPrice=P)").unwrap();
                    black_box(a.len())
                })
            });
            // cold path: the update hits the independent audit database —
            // only the tiny vAudit view is dirty; the stock views are not.
            group.bench_function(BenchmarkId::new(format!("{mode}_cold"), &label), |b| {
                let mut e = engine(stocks, days, incremental);
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    e.update(&format!("?.audit.log+(.id={i})")).unwrap();
                    let a = e.query("?.vAudit.ids(.id=I)").unwrap();
                    black_box(a.len())
                })
            });
        }
        // differential sanity at this size
        let mut inc = engine(stocks, days, true);
        let mut full = engine(stocks, days, false);
        for e in [&mut inc, &mut full] {
            e.update("?.euter.r+(.date=3/3/85,.stkCode=check,.clsPrice=1)").unwrap();
        }
        assert_eq!(
            inc.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap(),
            full.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap()
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
