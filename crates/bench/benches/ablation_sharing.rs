//! B14 — copy-on-write structural sharing ablation.
//!
//! Builds an engine over the sharded universe and materialises the
//! two-stratum view program with 4 parallel fixpoint workers (setup — this
//! work is identical under either copy discipline, since the fixpoint
//! always runs on the CoW engine). The measured region is the clone-heavy
//! maintenance pipeline that follows a refresh: build a hash index over the
//! derived union relation, take a checkpoint (snapshot copy + serialise),
//! then a burst of transaction snapshots. Two copy disciplines:
//!
//! * `cow` — `Value::clone()` at every copy point, i.e. the O(1) Arc-handle
//!   clones the engine performs today;
//! * `deepcopy` — [`Value::deep_clone`] at the same points, reproducing the
//!   pre-CoW cost model where every universe/relation copy rebuilt the
//!   whole structure node by node (the index entry set, the
//!   pre-serialisation checkpoint copy, and the full-universe snapshot
//!   `Store::begin` used to take per transaction).
//!
//! Both arms perform identical index/serialise work, so the gap is purely
//! the copy discipline. Differential correctness — byte-identical
//! serialised stores across arms — is asserted as a side effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_object::{Name, Value};
use idl_storage::index::{Index, IndexKind};
use idl_storage::Store;
use idl_workload::stock::{generate_sharded, sharded_union_rules, ShardedStockConfig};
use std::hint::black_box;
use std::time::Duration;

const SHARDS: usize = 16;
const STOCKS: usize = 8;
const DAYS: usize = 40;
const THREADS: usize = 4;
/// Transaction snapshots taken per pipeline run (each one historically
/// deep-copied the whole universe).
const TXN_SNAPSHOTS: usize = 8;

#[derive(Clone, Copy)]
enum CopyMode {
    Cow,
    Deep,
}

impl CopyMode {
    fn copy(self, v: &Value) -> Value {
        match self {
            CopyMode::Cow => v.clone(),
            CopyMode::Deep => v.deep_clone(),
        }
    }

    fn label(self) -> &'static str {
        match self {
            CopyMode::Cow => "cow",
            CopyMode::Deep => "deepcopy",
        }
    }
}

fn refreshed_engine(universe: &Value, rules: &str) -> Engine {
    let store = Store::from_universe(universe.clone()).expect("sharded universe is a tuple");
    let mut e = Engine::from_store(store);
    let opts = e.options().rebuild().threads(THREADS).build();
    e.set_options(opts);
    e.add_rules(rules).expect("sharded rules install");
    e.refresh_views().expect("fixpoint converges");
    e
}

/// The post-refresh maintenance pipeline under one copy discipline.
/// Returns the serialised store so the differential check can compare arms.
fn pipeline(e: &Engine, mode: CopyMode) -> String {
    // Index build over the derived union relation. Pre-CoW, every entry
    // clone was a structural copy of the tuple.
    let rel_copy = mode.copy(&Value::Set(e.store().relation("dbU", "q").unwrap().clone()));
    let idx = Index::build(IndexKind::Hash, rel_copy.as_set().unwrap(), &Name::new("stk"));
    black_box(idx.entry_count());

    // Checkpoint: snapshot the universe, then serialise.
    let ckpt = mode.copy(e.store().universe());
    black_box(&ckpt);
    let json = idl_storage::persist::to_json(e.store()).expect("store serialises");

    // Burst of transaction snapshots — what `Store::begin` takes per txn.
    for _ in 0..TXN_SNAPSHOTS {
        black_box(mode.copy(e.store().universe()));
    }
    json
}

fn bench(c: &mut Criterion) {
    let cfg = ShardedStockConfig::sized(SHARDS, STOCKS, DAYS);
    let universe = generate_sharded(&cfg);
    let rules = sharded_union_rules(&cfg);
    let engine = refreshed_engine(&universe, &rules);

    // differential check: copy discipline must not change derived contents
    let cow_json = pipeline(&engine, CopyMode::Cow);
    let deep_json = pipeline(&engine, CopyMode::Deep);
    assert_eq!(cow_json, deep_json, "copy discipline changed the serialised store");

    let mut group = c.benchmark_group("B14_ablation_sharing");
    for mode in [CopyMode::Cow, CopyMode::Deep] {
        group.bench_function(BenchmarkId::new("pipeline", mode.label()), |b| {
            b.iter(|| black_box(pipeline(&engine, mode).len()))
        });
    }
    // Isolated snapshot cost: exactly the copy `Store::begin` takes.
    for mode in [CopyMode::Cow, CopyMode::Deep] {
        group.bench_function(BenchmarkId::new("txn_snapshot", mode.label()), |b| {
            b.iter(|| black_box(mode.copy(engine.store().universe())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench
}
criterion_main!(benches);
