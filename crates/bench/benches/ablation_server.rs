//! B15 — serving-layer ablation: what the wire costs, and what
//! concurrency buys.
//!
//! Measures request round trips over a loopback `idl-server` against the
//! same engine driven directly in process:
//!
//! * `query/direct`    — [`Engine::query`] in a loop, no server (the
//!   evaluation floor);
//! * `query/clients_1` — one session, one request in flight: the full
//!   wire cost (serialize, frame, CRC, syscalls, deserialize) per
//!   round trip;
//! * `query/clients_8` — eight concurrent sessions issuing the same
//!   total number of queries: reads evaluate against the published
//!   snapshot without the writer lock, so on a multi-core host
//!   wall-clock should *drop* with sessions, not serialize (on a
//!   single-core runner expect parity with `clients_1`, which is
//!   itself the non-trivial result: no lock convoy, no slowdown);
//! * `mixed/clients_1` and `mixed/clients_8` — alternating update/query
//!   load: updates serialize through the single writer (and republish a
//!   snapshot each), so the 8-session speed-up here is bounded by the
//!   write fraction.
//!
//! The server runs with `request_timeout = 0` (inline evaluation, no
//! watchdog thread) so the measurement isolates protocol + concurrency
//! cost. Updates re-insert existing facts (set semantics make them
//! no-ops on the universe), keeping the workload constant-size across
//! iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_server::{serve, Client, ServerConfig, ServerHandle};
use std::hint::black_box;
use std::time::Duration;

/// Total requests per measured batch (split across sessions).
const OPS: usize = 64;
/// Distinct `.c` partitions preloaded into the universe.
const PARTITIONS: usize = 8;
/// Rows per partition.
const ROWS: usize = 50;

fn seeded_engine() -> Engine {
    let mut e = Engine::new();
    let mut src = String::new();
    for c in 0..PARTITIONS {
        for k in 0..ROWS {
            src.push_str(&format!("?.db.r+(.c={c}, .k={k}) ;\n"));
        }
    }
    e.execute(&src).expect("seed universe");
    e.add_rules(".v.all(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;").expect("seed rules");
    e.refresh_views().expect("seed refresh");
    e
}

fn start_server() -> ServerHandle {
    start_server_maintain(true)
}

/// `maintain = false` pins the refresh-the-world reference mode: every
/// update leaves the views stale and the pre-ack republish rebuilds them.
fn start_server_maintain(maintain: bool) -> ServerHandle {
    let cfg = ServerConfig {
        request_timeout: Duration::ZERO, // inline evaluation, no watchdog
        ..ServerConfig::default()
    };
    let mut engine = seeded_engine();
    let opts = engine.options().rebuild().maintain(maintain).build();
    engine.set_options(opts);
    serve(Box::new(engine), cfg).expect("server starts")
}

fn query_src(c: usize) -> String {
    format!("?.db.r(.c={c}, .k=K), .v.all(.c={c}, .k=K)")
}

/// `sessions` threads split `OPS` requests; `write_every` > 0 makes every
/// n-th request a (constant-size re-insert) update through the writer.
fn drive(addr: std::net::SocketAddr, sessions: usize, write_every: usize) -> usize {
    let per_session = OPS / sessions;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut answers = 0usize;
                    for i in 0..per_session {
                        if write_every > 0 && i % write_every == 0 {
                            let src = format!("?.db.r+(.c={s}, .k={})", i % ROWS);
                            client.update(&src).expect("update");
                        } else {
                            answers += client.query(&query_src(s)).expect("query").len();
                        }
                    }
                    answers
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("session thread")).sum()
    })
}

fn bench_serving(c: &mut Criterion) {
    let handle = start_server();
    let addr = handle.local_addr();

    let mut group = c.benchmark_group("B15_server");
    group.bench_function(BenchmarkId::new("query", "direct"), |b| {
        let mut engine = seeded_engine();
        let src = query_src(3);
        b.iter(|| {
            let mut answers = 0usize;
            for _ in 0..OPS {
                answers += engine.query(&src).expect("direct query").len();
            }
            black_box(answers)
        })
    });
    for sessions in [1usize, 8] {
        group.bench_function(BenchmarkId::new("query", format!("clients_{sessions}")), |b| {
            b.iter(|| black_box(drive(addr, sessions, 0)))
        });
        group.bench_function(BenchmarkId::new("mixed", format!("clients_{sessions}")), |b| {
            b.iter(|| black_box(drive(addr, sessions, 4)))
        });
    }
    // Write-path maintenance vs refresh-the-world at the wire: every
    // request is a *real* one-row delta (insert/delete toggle of a
    // sentinel row, so the universe stays constant-size). With
    // maintenance on (`maintain_update`) the update is absorbed
    // in-transaction and the republished snapshot is already fresh; with
    // it off (`update_refresh`) each republish pays the stale-refresh
    // rebuild before the ack. `query_maintained` reads against the
    // maintained published snapshot.
    for maintain in [true, false] {
        let handle = start_server_maintain(maintain);
        let addr = handle.local_addr();
        let name = if maintain { "maintain_update" } else { "update_refresh" };
        group.bench_function(BenchmarkId::new(name, "clients_1"), |b| {
            b.iter(|| black_box(drive_toggle(addr, 1)))
        });
        if maintain {
            group.bench_function(BenchmarkId::new("query_maintained", "clients_1"), |b| {
                b.iter(|| black_box(drive(addr, 1, 0)))
            });
            let mut probe = Client::connect(addr).expect("probe connects");
            let reply = probe.stats().expect("stats");
            let m = reply.engine.maintenance.expect("maintenance counters published");
            assert!(m.views_maintained > 0, "toggle updates must be maintained: {m:?}");
        }
        let stats = handle.shutdown();
        assert_eq!(stats.errors, 0, "maintenance bench load must be error-free");
    }
    group.finish();

    let stats = handle.shutdown();
    assert_eq!(stats.errors, 0, "bench load must be error-free");
}

/// Every request is an update toggling a per-session sentinel row in and
/// out — a real one-row delta each time, with no net universe growth.
fn drive_toggle(addr: std::net::SocketAddr, sessions: usize) -> usize {
    let per_session = OPS / sessions;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    for i in 0..per_session {
                        let src = if i % 2 == 0 {
                            format!("?.db.r+(.c={s}, .k=999)")
                        } else {
                            format!("?.db.r-(.c={s}, .k=999)")
                        };
                        client.update(&src).expect("update");
                    }
                    per_session
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("session thread")).sum()
    })
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_serving
}
criterion_main!(benches);
