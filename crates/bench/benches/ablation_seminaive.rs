//! B8 — naive vs semi-naive fixpoint (§6 / DESIGN.md).
//!
//! The rule engine's semi-naive mode skips rules whose inputs did not
//! change in the previous iteration (relation-granularity deltas). This
//! bench materialises a three-level view chain (unified → customized →
//! summary) both ways.
//!
//! Expected shape: semi-naive does strictly fewer rule evaluations and
//! wins more as the chain deepens; both produce identical universes
//! (asserted).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_bench::stock_store;
use idl_eval::rules::RuleEngine;
use idl_eval::EvalOptions;
use idl_lang::{parse_program, Statement};
use std::hint::black_box;
use std::time::Duration;

const CHAIN: &str = "
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P) ;
    .dbE.r(.date=D,.stkCode=S,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;
    .dbO.S(.date=D,.clsPrice=P) <- .dbE.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbSum.stocks(.stk=S) <- .dbO.S(.clsPrice=P) ;
";

fn rules() -> Vec<idl_lang::Rule> {
    parse_program(CHAIN)
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            _ => panic!("chain contains only rules"),
        })
        .collect()
}

const B8_SIZES: &[(usize, usize)] = &[(5, 20), (10, 50), (20, 100)];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_ablation_seminaive");
    for &(stocks, days) in B8_SIZES {
        let label = format!("{stocks}stk_x_{days}d");
        for (mode, semi) in [("semi_naive", true), ("naive", false)] {
            group.bench_function(BenchmarkId::new(mode, &label), |b| {
                b.iter_batched(
                    || {
                        let mut engine = RuleEngine::new(rules()).unwrap();
                        engine.semi_naive = semi;
                        (engine, stock_store(stocks, days))
                    },
                    |(engine, mut store)| {
                        let stats = engine.materialize(&mut store, EvalOptions::default()).unwrap();
                        black_box((stats.rule_evals, stats.facts_added))
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
        // correctness + work-count sanity at this size
        let mut e1 = RuleEngine::new(rules()).unwrap();
        e1.semi_naive = true;
        let mut s1 = stock_store(stocks, days);
        let st1 = e1.materialize(&mut s1, EvalOptions::default()).unwrap();
        let mut e2 = RuleEngine::new(rules()).unwrap();
        e2.semi_naive = false;
        let mut s2 = stock_store(stocks, days);
        let st2 = e2.materialize(&mut s2, EvalOptions::default()).unwrap();
        assert_eq!(s1.universe(), s2.universe());
        assert!(st1.rule_evals <= st2.rule_evals);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
