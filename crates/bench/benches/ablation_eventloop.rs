//! B16 — serving-architecture ablation: the event loop vs the
//! thread-per-session reference under connection-scale load.
//!
//! The driver is itself a readiness-driven multiplexer (the vendored
//! `mio` shim, the same poller the server uses): it holds *all* sessions
//! open concurrently with at most one request in flight per session, so
//! a thousand connections cost the driver one poller — no thousand
//! client threads polluting the measurement. A *wave* pushes a fixed
//! request total through however many sessions exist; sessions beyond
//! the request count stay connected but idle, which is exactly the
//! saturation axis:
//!
//! * **event mode** parks an idle session as one registered fd — no
//!   thread, no timer, no syscall until bytes arrive;
//! * **threaded mode** pays a parked thread whose socket read wakes
//!   every 25 ms to check drain/idle deadlines, so idle sessions burn a
//!   growing share of the host CPU (on the single-core CI runner this
//!   is the dominant term at the 1k-session end).
//!
//! Criterion reports wave latency at the low and high ends per mode.
//! `BENCH_B16_CURVE=1` skips criterion and emits one JSON line per
//! (mode, sessions) point — throughput and p50/p99 per-request latency —
//! which `BENCH_B16.json` records as the saturation curve.
//!
//! Requests are `Ping` frames: B15 already prices evaluation over the
//! wire; B16 isolates what the *serving architecture* adds per request
//! when most sessions are idle.

use criterion::{criterion_group, BenchmarkId, Criterion};
use idl::Engine;
use idl_server::{protocol, serve, ServeMode, ServerConfig, ServerHandle};
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Requests per measured wave (spread round-robin over the sessions).
const WAVE_OPS: usize = 2048;

fn start_server(mode: ServeMode) -> ServerHandle {
    let cfg = ServerConfig {
        mode,
        max_sessions: 2048,
        request_timeout: Duration::ZERO,
        ..ServerConfig::default()
    };
    let mut engine = Engine::new();
    engine.add_rules(".v.all(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;").expect("seed rules");
    serve(Box::new(engine), cfg).expect("server starts")
}

/// One multiplexed client session: nonblocking socket, one request in
/// flight, a budget of requests still to issue.
struct Session {
    stream: TcpStream,
    out: Vec<u8>,
    out_at: usize,
    in_buf: Vec<u8>,
    sent_at: Option<Instant>,
    remaining: usize,
}

/// All sessions behind one poller. Connections persist across waves.
struct Driver {
    poll: Poll,
    sessions: Vec<Session>,
    ping: Vec<u8>,
}

impl Driver {
    /// Opens `n` concurrent sessions (blocking handshake each, then
    /// flipped nonblocking and registered).
    fn connect(addr: SocketAddr, n: usize) -> Driver {
        let poll = Poll::new().expect("poll");
        let mut ping = Vec::new();
        protocol::write_frame(&mut ping, b"\"Ping\"", 4096).unwrap();
        let mut sessions = Vec::with_capacity(n);
        for i in 0..n {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            stream.write_all(protocol::MAGIC).expect("client magic");
            let mut magic = [0u8; 8];
            stream.read_exact(&mut magic).expect("server magic");
            assert_eq!(&magic, protocol::MAGIC);
            protocol::read_frame(&mut stream, 4096, &mut |_| None).expect("greeting");
            stream.set_nonblocking(true).expect("nonblocking");
            let fd = stream.as_raw_fd();
            poll.registry()
                .register(&mut SourceFd(&fd), Token(i), Interest::READABLE)
                .expect("register");
            sessions.push(Session {
                stream,
                out: Vec::new(),
                out_at: 0,
                in_buf: Vec::new(),
                sent_at: None,
                remaining: 0,
            });
        }
        Driver { poll, sessions, ping }
    }

    fn send(&mut self, idx: usize) {
        let ping = &self.ping;
        let s = &mut self.sessions[idx];
        s.out.extend_from_slice(ping);
        s.sent_at = Some(Instant::now());
        s.remaining -= 1;
        // write inline; anything the socket refuses waits for WRITABLE
        while s.out_at < s.out.len() {
            match s.stream.write(&s.out[s.out_at..]) {
                Ok(n) => s.out_at += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("session {idx} write: {e}"),
            }
        }
        if s.out_at >= s.out.len() {
            s.out.clear();
            s.out_at = 0;
        } else {
            let fd = s.stream.as_raw_fd();
            self.poll
                .registry()
                .reregister(&mut SourceFd(&fd), Token(idx), Interest::READABLE | Interest::WRITABLE)
                .expect("reregister rw");
        }
    }

    /// Pushes `ops` requests through the open sessions, round-robin, one
    /// in flight per session. Returns per-request latencies.
    fn wave(&mut self, ops: usize) -> Vec<Duration> {
        let n = self.sessions.len();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            s.remaining = ops / n + usize::from(i < ops % n);
        }
        let mut latencies = Vec::with_capacity(ops);
        for i in 0..n {
            if self.sessions[i].remaining > 0 {
                self.send(i);
            }
        }
        let mut events = Events::with_capacity(1024);
        let mut chunk = [0u8; 64 * 1024];
        while latencies.len() < ops {
            self.poll.poll(&mut events, Some(Duration::from_secs(10))).expect("poll");
            assert!(!events.is_empty(), "wave stalled: no readiness within 10s");
            let fired: Vec<(usize, bool)> =
                events.iter().map(|e| (e.token().0, e.is_writable())).collect();
            for (idx, writable) in fired {
                if writable {
                    let s = &mut self.sessions[idx];
                    while s.out_at < s.out.len() {
                        match s.stream.write(&s.out[s.out_at..]) {
                            Ok(n) => s.out_at += n,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) => panic!("session {idx} write: {e}"),
                        }
                    }
                    if s.out_at >= s.out.len() {
                        s.out.clear();
                        s.out_at = 0;
                        let fd = s.stream.as_raw_fd();
                        self.poll
                            .registry()
                            .reregister(&mut SourceFd(&fd), Token(idx), Interest::READABLE)
                            .expect("reregister r");
                    }
                }
                loop {
                    let s = &mut self.sessions[idx];
                    match s.stream.read(&mut chunk) {
                        Ok(0) => panic!("session {idx}: server hung up mid-wave"),
                        Ok(got) => s.in_buf.extend_from_slice(&chunk[..got]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => panic!("session {idx} read: {e}"),
                    }
                }
                // consume complete reply frames
                loop {
                    let s = &mut self.sessions[idx];
                    if s.in_buf.len() < protocol::FRAME_HEADER {
                        break;
                    }
                    let declared = u32::from_le_bytes(s.in_buf[..4].try_into().unwrap()) as usize;
                    let total = protocol::FRAME_HEADER + declared;
                    if s.in_buf.len() < total {
                        break;
                    }
                    s.in_buf.drain(..total);
                    let sent = s.sent_at.take().expect("reply without a request");
                    latencies.push(sent.elapsed());
                    if s.remaining > 0 {
                        self.send(idx);
                    }
                }
            }
        }
        latencies
    }
}

/// (throughput req/s, p50, p99) of one wave.
fn measure(driver: &mut Driver, ops: usize) -> (f64, Duration, Duration) {
    let t0 = Instant::now();
    let mut lat = driver.wave(ops);
    let elapsed = t0.elapsed();
    lat.sort_unstable();
    let pick = |p: f64| lat[((lat.len() - 1) as f64 * p).floor() as usize];
    (ops as f64 / elapsed.as_secs_f64(), pick(0.50), pick(0.99))
}

fn bench_eventloop(c: &mut Criterion) {
    let mut group = c.benchmark_group("B16_eventloop");
    for mode in [ServeMode::Event, ServeMode::Threaded] {
        for sessions in [64usize, 1024] {
            let handle = start_server(mode);
            let mut driver = Driver::connect(handle.local_addr(), sessions);
            driver.wave(WAVE_OPS); // warm every session once
            group
                .bench_function(BenchmarkId::new(format!("{mode}"), format!("s{sessions}")), |b| {
                    b.iter(|| black_box(driver.wave(WAVE_OPS).len()))
                });
            drop(driver);
            let stats = handle.shutdown();
            assert_eq!(stats.errors, 0, "bench load must be error-free");
        }
    }
    group.finish();
}

/// The saturation curve behind `BENCH_B16.json`: one JSON line per
/// (mode, sessions) point, throughput and per-request percentiles.
fn run_curve() {
    println!("[");
    let mut first = true;
    for mode in [ServeMode::Event, ServeMode::Threaded] {
        for sessions in [8usize, 64, 256, 512, 1024] {
            let handle = start_server(mode);
            let mut driver = Driver::connect(handle.local_addr(), sessions);
            driver.wave(WAVE_OPS); // warm-up wave
            let (rps, p50, p99) = measure(&mut driver, WAVE_OPS);
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "  {{\"mode\": \"{mode}\", \"sessions\": {sessions}, \"wave_ops\": {WAVE_OPS}, \
                 \"throughput_rps\": {rps:.0}, \"p50_us\": {}, \"p99_us\": {}}}",
                p50.as_micros(),
                p99.as_micros()
            );
            drop(driver);
            let stats = handle.shutdown();
            assert_eq!(stats.errors, 0, "curve load must be error-free");
        }
    }
    println!("\n]");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_eventloop
}

fn main() {
    if std::env::var("BENCH_B16_CURVE").is_ok() {
        run_curve();
        return;
    }
    benches();
}
