//! B9 — storage substrate microbenchmarks.
//!
//! Baseline costs of the substrate the language sits on: point inserts,
//! predicate deletes, index build + probe, statistics, snapshot
//! save/load. These numbers contextualise B1–B8 (how much of a query is
//! language overhead vs storage work).
//!
//! The snapshot roundtrips run twice — once through the legacy JSON
//! wrapper and once through the binary codec — so `BENCH_B9.json` keeps
//! the serialization-tax comparison honest. `BENCH_B9_SIZES=1` skips
//! criterion and emits one JSON line per universe size with the on-disk
//! blob sizes of both encodings (the size axis in `BENCH_B9.json`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use idl_bench::stock_store;
use idl_object::{tuple, Value};
use idl_storage::{codec, persist, IndexKind, Store};
use std::hint::black_box;
use std::time::Duration;

const B9_SIZES: &[(usize, usize)] = &[(10, 50), (40, 150)];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_storage");
    for &(stocks, days) in B9_SIZES {
        let label = format!("{stocks}stk_x_{days}d");

        group.bench_function(BenchmarkId::new("insert_dedup", &label), |b| {
            let mut store = stock_store(stocks, days);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let t = tuple! { stkCode: "bench", clsPrice: i as i64 };
                black_box(store.insert("euter", "r", t).unwrap())
            })
        });

        group.bench_function(BenchmarkId::new("delete_where_miss", &label), |b| {
            let mut store = stock_store(stocks, days);
            b.iter(|| {
                black_box(
                    store
                        .delete_where("euter", "r", |t| {
                            t.attr("stkCode") == Some(&Value::str("no_such"))
                        })
                        .unwrap(),
                )
            })
        });

        group.bench_function(BenchmarkId::new("index_build", &label), |b| {
            b.iter_batched(
                || stock_store(stocks, days),
                |store| {
                    let idx = store.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
                    black_box(idx.distinct_keys())
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("index_probe_cached", &label), |b| {
            let store = stock_store(stocks, days);
            store.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
            let key = Value::str("stk001");
            b.iter(|| {
                let idx = store.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
                black_box(idx.lookup_eq(&key).len())
            })
        });

        group.bench_function(BenchmarkId::new("stats", &label), |b| {
            b.iter_batched(
                || stock_store(stocks, days),
                |store| black_box(store.stats("euter", "r").unwrap().cardinality),
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("snapshot_json_roundtrip", &label), |b| {
            let store = stock_store(stocks, days);
            b.iter(|| {
                let json = persist::to_json(&store).unwrap();
                let back = persist::from_json(&json).unwrap();
                black_box(back.database_names().len())
            })
        });

        group.bench_function(BenchmarkId::new("snapshot_binary_roundtrip", &label), |b| {
            let store = stock_store(stocks, days);
            b.iter(|| {
                let blob = codec::encode_snapshot(store.universe(), 1, 0, None);
                let snap = codec::decode_snapshot(&blob).unwrap();
                let back = Store::from_universe(snap.universe).unwrap();
                black_box(back.database_names().len())
            })
        });

        group.bench_function(BenchmarkId::new("txn_snapshot_rollback", &label), |b| {
            let mut store = stock_store(stocks, days);
            b.iter(|| {
                store.begin();
                store.insert("euter", "r", tuple! { stkCode: "x", clsPrice: 1i64 }).unwrap();
                store.rollback().unwrap();
                black_box(store.version())
            })
        });
    }
    group.finish();
}

/// The size axis behind `BENCH_B9.json`: one JSON line per universe
/// size, on-disk bytes of the JSON wrapper vs the binary container.
fn run_sizes() {
    println!("[");
    let mut first = true;
    for &(stocks, days) in B9_SIZES {
        let store = stock_store(stocks, days);
        let json = persist::to_json(&store).unwrap().len();
        let binary = codec::encode_snapshot(store.universe(), 1, 0, None).len();
        if !first {
            println!(",");
        }
        first = false;
        print!(
            "  {{\"size\": \"{stocks}stk_x_{days}d\", \"json_bytes\": {json}, \
             \"binary_bytes\": {binary}, \"ratio\": {:.2}}}",
            json as f64 / binary as f64
        );
    }
    println!("\n]");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench
}

fn main() {
    if std::env::var("BENCH_B9_SIZES").is_ok() {
        run_sizes();
        return;
    }
    benches();
}
