//! B5 — update-program translation overhead (§7.1).
//!
//! `insStk`/`delStk` translate one logical update into three physical
//! updates, one per schema. This bench compares a program call against the
//! equivalent hand-written direct updates, isolating the program
//! machinery's cost (parameter binding, signature checks, clause
//! dispatch).
//!
//! Expected shape: a small constant factor over direct updates,
//! independent of database size (both paths are index/point updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_bench::stock_store;
use std::hint::black_box;
use std::time::Duration;

fn program_engine(stocks: usize, days: usize) -> Engine {
    let mut e = Engine::from_store(stock_store(stocks, days));
    // programs only — no views, so nothing re-materialises between calls
    e.execute(idl::transparency::standard_update_programs()).unwrap();
    e
}

const B5_SIZES: &[(usize, usize)] = &[(10, 50), (40, 150)];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_update_programs");
    for &(stocks, days) in B5_SIZES {
        let label = format!("{stocks}stk_x_{days}d");

        // program call: insert then delete the same quote (net zero state)
        group.bench_function(BenchmarkId::new("insStk_delStk_program", &label), |b| {
            let mut e = program_engine(stocks, days);
            b.iter(|| {
                e.update("?.dbU.insStk(.stk=bench, .date=3/3/85, .price=1)").unwrap();
                let st = e.update("?.dbU.delStk(.stk=bench)").unwrap();
                black_box(st.total())
            })
        });

        // hand-written direct equivalents (same net effect)
        group.bench_function(BenchmarkId::new("insert_delete_direct", &label), |b| {
            let mut e = program_engine(stocks, days);
            b.iter(|| {
                e.update(
                    "?.euter.r+(.stkCode=bench,.date=3/3/85,.clsPrice=1), \
                      .chwab.r(.date=3/3/85, +.bench=1), \
                      .ource.bench+(.date=3/3/85,.clsPrice=1)",
                )
                .unwrap();
                let st = e
                    .update(
                        "?.euter.r-(.stkCode=bench), \
                          .chwab.r(.bench-=X), \
                          .ource.bench-(.date=D)",
                    )
                    .unwrap();
                black_box(st.total())
            })
        });

        // metadata-heavy removal via rmStk
        group.bench_function(BenchmarkId::new("rmStk_program", &label), |b| {
            let mut e = program_engine(stocks, days);
            b.iter(|| {
                e.update("?.dbU.insStk(.stk=bench, .date=3/3/85, .price=1)").unwrap();
                let st = e.update("?.dbU.rmStk(.stk=bench)").unwrap();
                black_box(st.total())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    targets = bench
}
criterion_main!(benches);
