//! B13 — durability ablation: what crash safety costs per update.
//!
//! Drives batches of mutating requests through [`DurableEngine`] on the
//! real file system under the four log configurations:
//!
//! * `framed_fsync`   — CRC-framed records, fsync before every ack (the
//!   crash-safe default; pays one `fsync` per mutation);
//! * `framed_nosync`  — framed records, no fsync (OS-buffered appends:
//!   isolates the framing/CRC cost from the sync cost);
//! * `legacy_fsync`   — the pre-framing line format with fsyncs (the cost
//!   of the old encoding under the new sync-before-ack discipline);
//! * `legacy_nosync`  — line format, no fsync (closest to the seed
//!   repo's original `writeln!+flush` behaviour);
//!
//! plus an `in_memory` baseline (plain [`Engine`], no durability at all).
//! A second group measures **recovery**: `DurableEngine::open` replaying
//! a log of `RECOVER_RECORDS` records, framed vs legacy.
//!
//! Expected shape: `framed_nosync` ≈ `legacy_nosync` (framing adds a CRC
//! and 16 header bytes per record — noise next to evaluation), both a
//! small constant over `in_memory`; the `*_fsync` modes are dominated by
//! device sync latency, which is the honest price of zero acked-update
//! loss. Recovery is linear in log length for both formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::durable::{DurableEngine, SyncPolicy};
use idl::{Engine, LogFormat};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Mutating requests per measured batch.
const BATCH: usize = 32;
/// Log length for the recovery-replay group.
const RECOVER_RECORDS: usize = 512;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("idl-b13-{}", std::process::id()))
}

fn fresh_dir() -> PathBuf {
    bench_root().join(format!("run-{}", DIR_COUNTER.fetch_add(1, Ordering::Relaxed)))
}

fn batch_statements(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("?.db.r+(.a={i}, .b={})", i * 7 % 101)).collect()
}

const MODES: &[(&str, LogFormat, SyncPolicy)] = &[
    ("framed_fsync", LogFormat::Framed, SyncPolicy::Always),
    ("framed_nosync", LogFormat::Framed, SyncPolicy::Never),
    ("legacy_fsync", LogFormat::LegacyLines, SyncPolicy::Always),
    ("legacy_nosync", LogFormat::LegacyLines, SyncPolicy::Never),
];

fn open_mode(dir: PathBuf, format: LogFormat, sync: SyncPolicy) -> DurableEngine {
    let opts = idl::EngineOptions::builder().log_format(format).sync(sync).durability();
    DurableEngine::open_with_vfs(dir, std::sync::Arc::new(idl::RealVfs::new()), opts, |_| Ok(()))
        .expect("open durable engine")
}

fn bench_updates(c: &mut Criterion) {
    let stmts = batch_statements(BATCH);
    let mut group = c.benchmark_group("B13_durability_update");
    for &(name, format, sync) in MODES {
        group.bench_function(BenchmarkId::new("batch", name), |b| {
            b.iter_batched(
                || open_mode(fresh_dir(), format, sync),
                |mut d| {
                    for s in &stmts {
                        d.update(s).expect("durable update");
                    }
                    black_box(d.last_lsn())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.bench_function(BenchmarkId::new("batch", "in_memory"), |b| {
        b.iter_batched(
            Engine::new,
            |mut e| {
                for s in &stmts {
                    e.update(s).expect("in-memory update");
                }
                black_box(e.store().relation("db", "r").map(|r| r.len()).unwrap_or(0))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let stmts = batch_statements(RECOVER_RECORDS);
    let mut group = c.benchmark_group("B13_durability_recovery");
    for &(name, format) in &[("framed", LogFormat::Framed), ("legacy", LogFormat::LegacyLines)] {
        // build one long log, replay it per iteration
        let dir = fresh_dir();
        {
            let mut d = open_mode(dir.clone(), format, SyncPolicy::Never);
            for s in &stmts {
                d.update(s).expect("seed update");
            }
        }
        group.bench_function(BenchmarkId::new("replay_512", name), |b| {
            b.iter(|| {
                let d = open_mode(dir.clone(), format, SyncPolicy::Never);
                let stats = d.durability_stats();
                assert_eq!(stats.records_recovered as usize, RECOVER_RECORDS);
                black_box(stats.records_recovered)
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(bench_root()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_updates, bench_recovery
}
criterion_main!(benches);
