//! B4 — higher-order view expansion (§6).
//!
//! `dbO.S(date, clsPrice) <- dbI.p(...)` defines *one relation per stock*.
//! This bench fixes the number of days and sweeps the number of stocks, so
//! the derived-relation count is the independent variable.
//!
//! Expected shape: total cost grows linearly in #stocks (one derived
//! relation each); per-relation cost stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::Engine;
use idl_bench::stock_store;
use std::hint::black_box;
use std::time::Duration;

const RULES: &str = "
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;
";

const STOCK_COUNTS: &[usize] = &[5, 10, 20, 40, 80];
const DAYS: usize = 20;
const THREADS: &[usize] = &[1, 4];

/// Plan-cache hit rate on the higher-order view program: both rule
/// bodies miss once on the cold refresh and hit on every refresh after,
/// regardless of how many derived relations the heads expand into.
fn report_plan_cache() {
    let mut e = Engine::from_store(stock_store(10, DAYS));
    e.add_rules(RULES).unwrap();
    let cold = e.refresh_views().unwrap();
    let warm = e.refresh_views().unwrap();
    let cache = e.plan_cache();
    let total = cache.hits() + cache.misses();
    println!(
        "B4 plan cache: cold refresh compiled {} plans ({} misses), warm refresh {} hits; \
         engine hit rate {}/{} ({:.0}%)",
        cold.plans_compiled,
        cold.plan_cache_misses,
        warm.plan_cache_hits,
        cache.hits(),
        total,
        100.0 * cache.hits() as f64 / total.max(1) as f64
    );
}

fn bench(c: &mut Criterion) {
    report_plan_cache();
    let mut group = c.benchmark_group("B4_ho_view_expansion");
    for &stocks in STOCK_COUNTS {
        for &threads in THREADS {
            let id = BenchmarkId::new("derive_dbO", format!("{stocks}stk_{threads}thr"));
            group.bench_function(id, |b| {
                b.iter_batched(
                    || {
                        let mut e = Engine::from_store(stock_store(stocks, DAYS));
                        let opts = e.options().rebuild().threads(threads).build();
                        e.set_options(opts);
                        e.add_rules(RULES).unwrap();
                        e
                    },
                    |mut e| {
                        let stats = e.refresh_views().unwrap();
                        // sanity: one derived relation per stock
                        let rels = e.store().relation_names("dbO").unwrap().len();
                        assert_eq!(rels, stocks);
                        black_box(stats.facts_added)
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
