//! B2 — cross-database higher-order join.
//!
//! §4.3: *"list the stocks in ource and chwab that have the same closing
//! price"* — a join whose join key is partly **metadata** (the stock is an
//! attribute name in chwab and a relation name in ource). Measured planned
//! vs naive: the planner binds `D`/`S` early and probes `ource.S` by date
//! through the index, while naive mode re-scans.
//!
//! Expected shape: planned ≪ naive, gap widening with size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_bench::{request, run_query, size_label, stock_store};
use idl_eval::EvalOptions;
use std::hint::black_box;
use std::time::Duration;

const JOIN: &str = "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)";
const JOIN_SIZES: &[(usize, usize)] = &[(5, 20), (10, 50), (20, 100)];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_ho_join");
    let req = request(JOIN);
    for &(stocks, days) in JOIN_SIZES {
        let store = stock_store(stocks, days);
        group.bench_with_input(
            BenchmarkId::new("planned", size_label(stocks, days)),
            &store,
            |b, store| b.iter(|| black_box(run_query(store, &req, EvalOptions::default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", size_label(stocks, days)),
            &store,
            |b, store| b.iter(|| black_box(run_query(store, &req, EvalOptions::naive()))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);
