//! B7 — planner/index ablation.
//!
//! Three evaluator configurations over the E1/E2 query battery:
//! `naive` (no reordering, no indexes), `planned` (reordering only), and
//! `planned+idx` (the default). Differential correctness is asserted as a
//! side effect.
//!
//! Expected shape: planned ≥ naive on selective queries (reordering puts
//! the cheap equality first), planned+idx clearly ahead when a ground
//! equality probe exists; metadata-browsing queries (no probes) show all
//! three roughly equal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl_bench::{request, run_query, stock_store};
use idl_eval::EvalOptions;
use std::hint::black_box;
use std::time::Duration;

const STOCKS: usize = 20;
const DAYS: usize = 100;

fn configs() -> [(&'static str, EvalOptions); 3] {
    [
        ("naive", EvalOptions::naive()),
        ("planned", EvalOptions { use_indexes: false, reorder: true, ..EvalOptions::default() }),
        ("planned_idx", EvalOptions::default()),
    ]
}

fn bench(c: &mut Criterion) {
    let store = stock_store(STOCKS, DAYS);
    let battery = [
        // written worst-first: range before the selective equality
        ("selective_eq", "?.euter.r(.clsPrice>100, .stkCode=stk003, .date=D)"),
        ("self_join", "?.euter.r(.stkCode=stk003,.clsPrice=P,.date=D), .euter.r¬(.stkCode=stk003,.clsPrice>P)"),
        ("ho_attr_scan", "?.chwab.r(.S>180)"),
        ("metadata_browse", "?.X.Y(.stkCode)"),
    ];
    let mut group = c.benchmark_group("B7_ablation_planner");
    for (name, src) in battery {
        let req = request(src);
        // differential check across configurations
        let reference = run_query(&store, &req, EvalOptions::naive());
        for (cfg_name, opts) in configs() {
            assert_eq!(run_query(&store, &req, opts), reference, "{name}/{cfg_name}");
            group.bench_function(BenchmarkId::new(name, cfg_name), |b| {
                b.iter(|| black_box(run_query(&store, &req, opts)))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = bench
}
criterion_main!(benches);
