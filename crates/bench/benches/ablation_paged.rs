//! B18 — paged-storage ablation: what the buffer pool costs and buys.
//!
//! Builds one checkpointed universe (40 relations, ~50 rows each) whose
//! page file is far larger than the small pools, then measures three
//! things across `--storage` backends and pool sizes:
//!
//! * `B18_paged_query` — a §4 battery query through the *engine* on a
//!   recovered instance. Queries always run against the in-memory
//!   universe, so the paged backend must price-match the mem backend
//!   here (the ISSUE acceptance bound is 2×); the pool only shapes the
//!   write/recovery path, never steady-state evaluation.
//! * `B18_paged_scan` — reading every relation straight off the storage
//!   backend (`storage_read_relation`), which *does* go through the
//!   buffer pool. A pool smaller than the file re-faults pages every
//!   round (perpetually cold: misses + evictions each scan); a pool that
//!   holds the whole file serves round two onward from memory (warm).
//!   The pool-size axis is the cold→warm curve.
//! * `B18_paged_recovery` — `DurableEngine::open` replaying the same
//!   checkpoint: page-file catalog walk vs snapshot decode.
//!
//! Differential asserts ride along: every backend recovers the same
//! universe bytes, the tiny pool demonstrably evicts, and the big pool's
//! steady-state scan is all hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idl::durable::DurableEngine;
use idl::{Backend, StorageSpec};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const DBS: usize = 4;
const RELS: usize = 10;
const ROWS: usize = 50;

/// Pool sizes for the scan/recovery axes: 2 pages is pathological
/// (every scan round evicts), 8 is a small working set, 1024 holds the
/// whole file (the engine default).
const POOLS: &[usize] = &[2, 8, 1024];

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("idl-b18-{}", std::process::id()))
}

fn fresh_dir() -> PathBuf {
    bench_root().join(format!("run-{}", DIR_COUNTER.fetch_add(1, Ordering::Relaxed)))
}

fn spec_name(spec: StorageSpec) -> String {
    spec.to_string()
}

fn open(dir: PathBuf, spec: StorageSpec) -> DurableEngine {
    let opts = idl::EngineOptions::builder().storage(spec).durability();
    DurableEngine::open_with_vfs(dir, std::sync::Arc::new(idl::RealVfs::new()), opts, |_| Ok(()))
        .expect("open durable engine")
}

/// Populates `dir` with the benchmark universe and a full checkpoint,
/// so reopen cost is the storage backend's recovery path, not log replay.
fn build_universe(dir: PathBuf, spec: StorageSpec) -> PathBuf {
    let mut d = open(dir.clone(), spec);
    for db in 0..DBS {
        for rel in 0..RELS {
            let stmts: Vec<String> = (0..ROWS)
                .map(|i| format!("?.d{db}.r{rel}+(.a={i}, .b=\"row-{db}-{rel}-{i:04}\")"))
                .collect();
            for s in &stmts {
                d.update(s).expect("populate");
            }
        }
    }
    d.checkpoint_full().expect("checkpoint");
    dir
}

/// Reads every relation straight off the storage backend.
fn scan_storage(d: &mut DurableEngine) -> usize {
    let mut rows = 0;
    for db in 0..DBS {
        for rel in 0..RELS {
            let v = d
                .storage_read_relation(&format!("d{db}"), &format!("r{rel}"))
                .expect("storage read")
                .expect("relation present");
            rows += v.as_set().map(|s| s.len()).unwrap_or(1);
        }
    }
    rows
}

fn bench_paged(c: &mut Criterion) {
    let mem_dir = build_universe(fresh_dir(), StorageSpec::Mem);
    let paged_dirs: Vec<(usize, PathBuf)> = POOLS
        .iter()
        .map(|&pool| (pool, build_universe(fresh_dir(), StorageSpec::Paged { pool_pages: pool })))
        .collect();

    // differential assert: every backend recovers the same bytes, and
    // the page file really does dwarf the small pools
    let mem_universe =
        open(mem_dir.clone(), StorageSpec::Mem).universe_json().expect("mem universe");
    for &(pool, ref dir) in &paged_dirs {
        let spec = StorageSpec::Paged { pool_pages: pool };
        let mut d = open(dir.clone(), spec);
        assert_eq!(
            d.universe_json().expect("paged universe"),
            mem_universe,
            "paged:{pool} recovered different bytes than mem"
        );
        let stats = d.durability_stats();
        assert!(
            stats.storage_pages > 8,
            "page file too small to exercise the pool ({} pages)",
            stats.storage_pages
        );
        if pool == 2 {
            scan_storage(&mut d);
            let pool_stats = d.durability_stats().pool.expect("pool stats");
            assert!(pool_stats.evictions > 0, "2-page pool never evicted");
        }
    }

    // Warm engine-query latency: paged must price-match mem (≤2×).
    let query = "?.d0.r3(.a>40, .b=Y)";
    let mut group = c.benchmark_group("B18_paged_query");
    {
        let mut d = open(mem_dir.clone(), StorageSpec::Mem);
        group.bench_function(BenchmarkId::new("warm", "mem"), |b| {
            b.iter(|| black_box(d.query(query).expect("query").len()))
        });
    }
    for &(pool, ref dir) in &paged_dirs {
        let spec = StorageSpec::Paged { pool_pages: pool };
        let mut d = open(dir.clone(), spec);
        group.bench_function(BenchmarkId::new("warm", spec_name(spec)), |b| {
            b.iter(|| black_box(d.query(query).expect("query").len()))
        });
    }
    group.finish();

    // Cold→warm storage scans: the pool-size axis. 2 pages re-faults
    // every round; 1024 serves from memory after round one.
    let mut group = c.benchmark_group("B18_paged_scan");
    for &(pool, ref dir) in &paged_dirs {
        let spec = StorageSpec::Paged { pool_pages: pool };
        let mut d = open(dir.clone(), spec);
        scan_storage(&mut d); // round one: fault everything in once
        if pool == *POOLS.last().unwrap() {
            let before = d.durability_stats().pool.expect("pool stats");
            scan_storage(&mut d);
            let after = d.durability_stats().pool.expect("pool stats");
            assert_eq!(before.misses, after.misses, "warm scan on a full-file pool missed");
        }
        group.bench_function(BenchmarkId::new("scan_all", spec_name(spec)), |b| {
            b.iter(|| black_box(scan_storage(&mut d)))
        });
    }
    group.finish();

    // Recovery: reopening the checkpointed directory.
    let mut group = c.benchmark_group("B18_paged_recovery");
    group.bench_function(BenchmarkId::new("open", "mem"), |b| {
        b.iter(|| {
            let d = open(mem_dir.clone(), StorageSpec::Mem);
            black_box(d.last_lsn())
        })
    });
    for &(pool, ref dir) in &paged_dirs {
        let spec = StorageSpec::Paged { pool_pages: pool };
        group.bench_function(BenchmarkId::new("open", spec_name(spec)), |b| {
            b.iter(|| {
                let d = open(dir.clone(), spec);
                black_box(d.last_lsn())
            })
        });
    }
    group.finish();

    std::fs::remove_dir_all(bench_root()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_paged
}
criterion_main!(benches);
