//! The experiment runner: executes every worked example in the paper
//! (E1–E9 in DESIGN.md) against the miniature stock universe and checks the
//! result against the behaviour the paper's text prescribes.
//!
//! ```text
//! cargo run -p idl-bench --bin experiments
//! ```
//!
//! Output is one block per experiment: the IDL source exactly as the paper
//! writes it (modulo `;` statement separators), the computed answer, and a
//! PASS/FAIL verdict. The process exits non-zero if any check fails, so CI
//! can gate on it. EXPERIMENTS.md records a captured run.

use idl::{Engine, Value};
use idl_baseline::encode::{encode, fo_above_query, run_above_binding, Schema};
use idl_object::Date;
use std::process::ExitCode;

struct Report {
    passed: usize,
    failed: usize,
}

impl Report {
    fn new() -> Self {
        Report { passed: 0, failed: 0 }
    }

    fn check(&mut self, label: &str, ok: bool, detail: &str) {
        if ok {
            self.passed += 1;
            println!("  PASS  {label}: {detail}");
        } else {
            self.failed += 1;
            println!("  FAIL  {label}: {detail}");
        }
    }
}

fn paper_engine() -> Engine {
    // The miniature universe all examples run on: three days, three stocks,
    // chosen so every paper example has a non-trivial answer (hp crosses
    // $60, ibm crosses both $150 and $200).
    Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/3/85", "ibm", 160.0),
        ("3/3/85", "sun", 35.0),
        ("3/4/85", "hp", 62.0),
        ("3/4/85", "ibm", 155.0),
        ("3/4/85", "sun", 36.0),
        ("3/5/85", "hp", 61.0),
        ("3/5/85", "ibm", 210.0),
        ("3/5/85", "sun", 34.0),
    ])
}

fn q(e: &mut Engine, src: &str) -> idl::AnswerSet {
    println!("    {src}");
    e.query(src).unwrap_or_else(|err| panic!("{src}: {err}"))
}

fn main() -> ExitCode {
    let mut r = Report::new();

    e1_first_order_queries(&mut r);
    e2_higher_order_queries(&mut r);
    e3_update_expressions(&mut r);
    e4_higher_order_views(&mut r);
    e5_update_programs(&mut r);
    e6_view_updates(&mut r);
    e7_two_level_mapping(&mut r);
    e8_inexpressibility(&mut r);
    e9_extensions(&mut r);

    println!("\n=== {} passed, {} failed ===", r.passed, r.failed);
    if r.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// E1 (§4.2): the four first-order euter examples.
fn e1_first_order_queries(r: &mut Report) {
    println!("\n== E1: first-order queries on euter (§4.2) ==");
    let mut e = paper_engine();

    let a = q(&mut e, "?.euter.r(.stkCode=hp, .clsPrice>60)");
    r.check("hp ever above 60", a.is_true(), &format!("{a}"));

    let a = q(
        &mut e,
        "?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
    );
    r.check(
        "dates hp>60 and ibm>150",
        a.column("D")
            == vec![Value::date("3/4/85".parse().unwrap()), Value::date("3/5/85".parse().unwrap())],
        &format!("D = {:?}", a.column("D")),
    );

    let a = q(
        &mut e,
        "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp, .clsPrice>P)",
    );
    r.check(
        "hp all-time high via negation",
        a.column("P") == vec![Value::float(62.0)]
            && a.column("D") == vec![Value::date("3/4/85".parse().unwrap())],
        &format!("P = {:?}, D = {:?}", a.column("P"), a.column("D")),
    );

    let a = q(&mut e, "?.euter.r(.stkCode=S, .clsPrice>200)");
    r.check(
        "any stock above 200 (euter)",
        a.column("S") == vec![Value::str("ibm")],
        &format!("S = {:?}", a.column("S")),
    );

    // §2's query 2: per-day maximum, needing higher-order quantification on
    // the other two schemata.
    for (schema, src) in [
        ("euter", "?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r¬(.date=D,.clsPrice>P)"),
        ("chwab", "?.chwab.r(.date=D,.S=P), S != date, .chwab.r¬(.date=D,.S2>P)"),
        ("ource", "?.ource.S(.date=D,.clsPrice=P), .ource¬.S2(.date=D,.clsPrice>P)"),
    ] {
        let a = q(&mut e, src);
        r.check(
            &format!("per-day maximum on {schema} (§2 query 2)"),
            a.column("S") == vec![Value::str("ibm")] && a.column("D").len() == 3,
            &format!("winner ibm on {} days", a.column("D").len()),
        );
    }
}

/// E2 (§4.3): the higher-order query examples.
fn e2_higher_order_queries(r: &mut Report) {
    println!("\n== E2: higher-order queries (§4.3) ==");
    let mut e = paper_engine();

    let a = q(&mut e, "?.X.Y");
    r.check(
        "database names in the universe",
        a.column("X") == vec![Value::str("chwab"), Value::str("euter"), Value::str("ource")],
        &format!("X = {:?}", a.column("X")),
    );

    let a = q(&mut e, "?.ource.Y");
    r.check(
        "relation names in ource = stocks",
        a.column("Y") == vec![Value::str("hp"), Value::str("ibm"), Value::str("sun")],
        &format!("Y = {:?}", a.column("Y")),
    );

    let a = q(&mut e, "?.X.Y, X = ource");
    r.check(
        "footnote-7 constraint form",
        a.column("Y").len() == 3,
        &format!("{} relations", a.column("Y").len()),
    );

    let a = q(&mut e, "?.X.hp");
    r.check(
        "databases containing a relation named hp",
        a.column("X") == vec![Value::str("ource")],
        &format!("X = {:?}", a.column("X")),
    );

    let a = q(&mut e, "?.X.Y(.stkCode)");
    r.check(
        "database/relation containing attribute stkCode",
        a.column("X") == vec![Value::str("euter")] && a.column("Y") == vec![Value::str("r")],
        &format!("X = {:?}, Y = {:?}", a.column("X"), a.column("Y")),
    );

    let a = q(&mut e, "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)");
    r.check(
        "stocks in ource and chwab with same closing price",
        a.column("S").len() == 3,
        &format!("S = {:?}", a.column("S")),
    );

    let a = q(&mut e, "?.euter.Y, .chwab.Y, .ource.Y");
    r.check(
        "relation names occurring in all three databases",
        a.is_empty(),
        "none (r vs stock-named relations), as the schemata imply",
    );

    // "Did any stock ever close above 200" — all three schemata
    let a = q(&mut e, "?.chwab.r(.S>200)");
    r.check(
        "above-200 on chwab (S over attribute names)",
        a.column("S") == vec![Value::str("ibm")],
        &format!("S = {:?}", a.column("S")),
    );
    let a = q(&mut e, "?.ource.S(.clsPrice > 200)");
    r.check(
        "above-200 on ource (S over relation names)",
        a.column("S") == vec![Value::str("ibm")],
        &format!("S = {:?}", a.column("S")),
    );
}

/// E3 (§5.2): the update-expression examples.
fn e3_update_expressions(r: &mut Report) {
    println!("\n== E3: update expressions (§5.2) ==");
    let d33 = Value::date("3/3/85".parse::<Date>().unwrap());
    let _ = &d33;

    // insert + delete
    let mut e = paper_engine();
    println!("    ?.euter.r+(.date=3/3/85,.stkCode=dec,.clsPrice=50)");
    let st = e.update("?.euter.r+(.date=3/3/85,.stkCode=dec,.clsPrice=50)").unwrap();
    r.check("set plus inserts", st.inserted == 1, &format!("{st:?}"));
    println!("    ?.euter.r-(.date=3/3/85,.stkCode=dec)");
    let st = e.update("?.euter.r-(.date=3/3/85,.stkCode=dec)").unwrap();
    r.check("set minus deletes", st.deleted == 1, &format!("{st:?}"));

    // query-dependent delete
    let mut e = paper_engine();
    println!("    ?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=C), .euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=C)");
    let st = e
        .update("?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=C), .euter.r-(.date=3/3/85,.stkCode=hp,.clsPrice=C)")
        .unwrap();
    let gone = !e.query("?.euter.r(.date=3/3/85,.stkCode=hp)").unwrap().is_true();
    r.check("query-dependent delete", st.deleted == 1 && gone, &format!("{st:?}"));

    // atomic minus (null the value) vs attribute minus (drop the attribute)
    let mut e = paper_engine();
    println!("    ?.chwab.r(.date=3/3/85, .hp-=C)");
    e.update("?.chwab.r(.date=3/3/85, .hp-=C)").unwrap();
    let nulled = !e.query("?.chwab.r(.date=3/3/85, .hp=P)").unwrap().is_true();
    let attr_still_there = e.query("?.chwab.r(.A=P), A = hp").map(|a| a.is_true()).unwrap_or(false);
    r.check(
        "atomic minus nulls value, attribute survives",
        nulled && attr_still_there,
        &format!("queries on hp fail: {nulled}; other dates still carry hp: {attr_still_there}"),
    );

    let mut e = paper_engine();
    println!("    ?.chwab.r(.date=3/3/85, -.hp=C)");
    e.update("?.chwab.r(.date=3/3/85, -.hp=C)").unwrap();
    let gone_33 = !e.query("?.chwab.r(.date=3/3/85, .hp=P)").unwrap().is_true();
    let kept_34 = e.query("?.chwab.r(.date=3/4/85, .hp=P)").unwrap().is_true();
    r.check(
        "attribute minus drops attr from one tuple only (heterogeneous set)",
        gone_33 && kept_34,
        &format!("3/3 tuple lost hp: {gone_33}; 3/4 tuple kept it: {kept_34}"),
    );

    // the paper's price bump: delete then insert with C+10
    let mut e = paper_engine();
    println!("    ?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)");
    e.update("?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)")
        .unwrap();
    let bumped = e.query("?.chwab.r(.date=3/3/85, .hp=60)").unwrap().is_true();
    r.check("delete-then-insert bumps price by 10", bumped, "hp on 3/3/85 is now 60");

    // order sensitivity (§5.2: "the ordering of these two update requests
    // is relevant")
    let mut e = paper_engine();
    e.update("?.euter.r-(.stkCode=hp), .euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99)").unwrap();
    let fwd = e.query("?.euter.r(.stkCode=hp,.clsPrice=P)").unwrap().column("P").len();
    let mut e = paper_engine();
    e.update("?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99), .euter.r-(.stkCode=hp)").unwrap();
    let rev = e.query("?.euter.r(.stkCode=hp,.clsPrice=P)").unwrap().column("P").len();
    r.check(
        "update order is significant",
        fwd == 1 && rev == 0,
        &format!("delete-then-insert leaves {fwd} hp row(s); insert-then-delete leaves {rev}"),
    );
}

/// E4 (§6): unified and customized (higher-order) views, pnew, name maps.
fn e4_higher_order_views(r: &mut Report) {
    println!("\n== E4: higher-order views (§6) ==");
    let mut e = paper_engine();
    e.add_rules(idl::transparency::unified_view_rules()).unwrap();
    e.add_rules(idl::transparency::customized_view_rules()).unwrap();

    let a = q(&mut e, "?.dbI.p(.stk=S, .clsPrice>200)");
    r.check(
        "unified view answers the intention once for all schemata",
        a.column("S") == vec![Value::str("ibm")],
        &format!("S = {:?}", a.column("S")),
    );

    let a = q(&mut e, "?.dbO.Y");
    r.check(
        "dbO is a higher-order view: one relation per stock",
        a.column("Y") == vec![Value::str("hp"), Value::str("ibm"), Value::str("sun")],
        &format!("relations: {:?}", a.column("Y")),
    );

    // data-dependence: a new stock means a new derived relation
    e.update("?.euter.r+(.date=3/6/85,.stkCode=dec,.clsPrice=80)").unwrap();
    let a = q(&mut e, "?.dbO.Y");
    r.check(
        "view *cardinality* follows the data",
        a.column("Y").len() == 4,
        &format!("now {} relations", a.column("Y").len()),
    );

    // pnew reconciliation
    let mut e = paper_engine();
    e.add_rules(idl::transparency::unified_view_rules()).unwrap();
    e.add_rules(idl::transparency::reconciled_view_rules()).unwrap();
    e.update("?.ource.hp-(.date=3/3/85), .ource.hp+(.date=3/3/85,.clsPrice=51)").unwrap();
    let both = q(&mut e, "?.dbI.p(.stk=hp,.date=3/3/85,.clsPrice=P)");
    let one = q(&mut e, "?.dbI.pnew(.stk=hp,.date=3/3/85,.clsPrice=P)");
    r.check(
        "pnew reconciles the value discrepancy",
        both.column("P").len() == 2 && one.column("P") == vec![Value::float(50.0)],
        &format!("p sees {:?}, pnew sees {:?}", both.column("P"), one.column("P")),
    );

    // name mappings
    let mut e = Engine::new();
    e.update("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)").unwrap();
    e.update("?.chwab.r+(.date=3/3/85,.hewp=50)").unwrap();
    e.update("?.ource.hwp+(.date=3/3/85,.clsPrice=50)").unwrap();
    e.update("?.dbMaps.mapCE+(.c=hewp,.e=hp)").unwrap();
    e.update("?.dbMaps.mapOE+(.o=hwp,.e=hp)").unwrap();
    e.add_rules(
        "
        .dbI.q(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
        .dbI.q(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapCE(.c=S,.e=E), .chwab.r(.date=D,.S=P) ;
        .dbI.q(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapOE(.o=S,.e=E), .ource.S(.date=D,.clsPrice=P) ;
        ",
    )
    .unwrap();
    let a = q(&mut e, "?.dbI.q(.stk=S,.clsPrice=P)");
    r.check(
        "mapCE/mapOE unify discrepant stock codes",
        a.len() == 1 && a.column("S") == vec![Value::str("hp")],
        &format!("q = {a}"),
    );
}

/// E5 (§7.1): delStk / rmStk / insStk with full and partial bindings.
fn e5_update_programs(r: &mut Report) {
    println!("\n== E5: update programs (§7.1) ==");

    let make = || {
        let mut e = paper_engine();
        e.execute(idl::transparency::standard_update_programs()).unwrap();
        e
    };

    // delStk, fully bound
    let mut e = make();
    println!("    ?.dbU.delStk(.stk=hp, .date=3/3/85)");
    e.update("?.dbU.delStk(.stk=hp, .date=3/3/85)").unwrap();
    let euter_gone = !e.query("?.euter.r(.stkCode=hp,.date=3/3/85)").unwrap().is_true();
    let chwab_nulled = !e.query("?.chwab.r(.date=3/3/85,.hp=P)").unwrap().is_true();
    let ource_gone = !e.query("?.ource.hp(.date=3/3/85)").unwrap().is_true();
    let others_kept = e.query("?.euter.r(.stkCode=hp,.date=3/4/85)").unwrap().is_true();
    r.check(
        "delStk(hp, 3/3/85) translates per schema",
        euter_gone && chwab_nulled && ource_gone && others_kept,
        &format!("euter:{euter_gone} chwab:{chwab_nulled} ource:{ource_gone} rest:{others_kept}"),
    );

    // delStk with only the stock bound
    let mut e = make();
    println!("    ?.dbU.delStk(.stk=hp)");
    e.update("?.dbU.delStk(.stk=hp)").unwrap();
    let all_days = !e.query("?.euter.r(.stkCode=hp)").unwrap().is_true();
    let structure = e.query("?.ource.hp=R").unwrap().is_true(); // relation still exists
    r.check(
        "delStk(hp) deletes all days, keeps structure",
        all_days && structure,
        &format!("rows gone: {all_days}; ource.hp still a relation: {structure}"),
    );

    // rmStk removes data AND metadata
    let mut e = make();
    println!("    ?.dbU.rmStk(.stk=hp)");
    e.update("?.dbU.rmStk(.stk=hp)").unwrap();
    let euter_rows = !e.query("?.euter.r(.stkCode=hp)").unwrap().is_true();
    let chwab_attr = !e.query("?.chwab.r(.A=P), A = hp").unwrap().is_true();
    let ource_rel = !e.query("?.ource.hp").unwrap().is_true();
    r.check(
        "rmStk removes rows / attributes / relations respectively",
        euter_rows && chwab_attr && ource_rel,
        &format!("euter rows:{euter_rows} chwab attr:{chwab_attr} ource rel:{ource_rel}"),
    );

    // insStk requires all parameters (binding signature)
    let mut e = make();
    println!("    ?.dbU.insStk(.stk=dec, .date=3/3/85, .price=40)");
    e.update("?.dbU.insStk(.stk=dec, .date=3/3/85, .price=40)").unwrap();
    let visible = e.query("?.ource.dec(.clsPrice=40)").unwrap().is_true();
    println!("    ?.dbU.insStk(.stk=dec2, .date=3/3/85)   % missing .price");
    let err = e.update("?.dbU.insStk(.stk=dec2, .date=3/3/85)").unwrap_err();
    let rejected = err.to_string().contains("requires parameter");
    let untouched = !e.query("?.euter.r(.stkCode=dec2)").unwrap().is_true();
    r.check(
        "insStk inserts when fully bound, rejects under-bound calls",
        visible && rejected && untouched,
        &format!("insert ok:{visible}; rejection: \"{err}\"; no partial effect: {untouched}"),
    );
}

/// E6 (§7.2): updating through customized views via admin programs.
fn e6_view_updates(r: &mut Report) {
    println!("\n== E6: view updatability (§7.2) ==");
    let mut e = paper_engine();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();

    // direct updates on derived objects are rejected
    println!("    ?.dbI.p+(.date=3/9/85,.stk=x,.clsPrice=1)   % no program for dbI.p+");
    let err = e.update("?.dbI.p+(.date=3/9/85,.stk=x,.clsPrice=1)").unwrap_err();
    r.check(
        "derived objects refuse direct +/-",
        err.to_string().contains("derived"),
        &format!("\"{err}\""),
    );

    // view insert through the registered program
    println!("    ?.dbE.r+(.date=3/9/85, .stkCode=dec, .clsPrice=44)");
    e.update("?.dbE.r+(.date=3/9/85, .stkCode=dec, .clsPrice=44)").unwrap();
    let base = e.query("?.euter.r(.stkCode=dec,.clsPrice=44)").unwrap().is_true();
    let view = e.query("?.dbE.r(.stkCode=dec,.clsPrice=44)").unwrap().is_true();
    let ho_view = e.query("?.dbO.dec(.clsPrice=44)").unwrap().is_true();
    r.check(
        "view insert is faithful: decree visible after recomputation",
        base && view && ho_view,
        &format!("base:{base} dbE:{view} dbO:{ho_view}"),
    );

    // view delete
    println!("    ?.dbE.r-(.date=3/9/85, .stkCode=dec)");
    e.update("?.dbE.r-(.date=3/9/85, .stkCode=dec)").unwrap();
    let gone = !e.query("?.dbE.r(.stkCode=dec, .clsPrice=44)").unwrap().is_true();
    r.check("view delete is faithful", gone, "dec's 3/9 row no longer in dbE");
}

/// E7 (Figure 1): the two-level mapping round trip.
fn e7_two_level_mapping(r: &mut Report) {
    println!("\n== E7: two-level mapping round trip (Figure 1) ==");
    let mut e = paper_engine();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();

    // D_euter → U → D'_euter reproduces the source exactly
    let src = e.query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
    let view = e.query("?.dbE.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
    r.check("dbE ≡ euter on shared stocks", src == view, &format!("{} answers each", src.len()));

    // the chwab-shaped view carries the same facts
    let c = e.query("?.dbC.r(.date=3/5/85, .ibm=P)").unwrap();
    r.check(
        "dbC carries chwab-shaped rows",
        c.column("P") == vec![Value::float(210.0)],
        &format!("ibm on 3/5/85 = {:?}", c.column("P")),
    );

    // a stock present only in one base db appears in every customized view
    e.update("?.ource.newco+(.date=3/6/85, .clsPrice=9)").unwrap();
    let in_e = e.query("?.dbE.r(.stkCode=newco)").unwrap().is_true();
    let in_c = e.query("?.dbC.r(.newco=P)").unwrap().is_true();
    let in_o = e.query("?.dbO.newco(.clsPrice=9)").unwrap().is_true();
    r.check(
        "cross-schema propagation D_i → U → all D'_j",
        in_e && in_c && in_o,
        &format!("dbE:{in_e} dbC:{in_c} dbO:{in_o}"),
    );
}

/// E8 (§1–2): first-order inexpressibility demonstrator.
fn e8_inexpressibility(r: &mut Report) {
    println!("\n== E8: first-order inexpressibility (§1–§2) ==");
    let d = |s: &str| s.parse::<Date>().unwrap();
    let quotes =
        vec![(d("3/3/85"), "hp".to_string(), 50.0), (d("3/5/85"), "ibm".to_string(), 210.0)];

    // The IDL query is one fixed string for every schema and state:
    let idl_queries =
        ["?.euter.r(.stkCode=S, .clsPrice>200)", "?.chwab.r(.S>200)", "?.ource.S(.clsPrice>200)"];
    println!("    IDL: {}", idl_queries.join("  |  "));

    // The first-order programs for chwab/ource enumerate schema elements:
    let p_euter = fo_above_query(Schema::Euter, &quotes, 200.0);
    let p_chwab = fo_above_query(Schema::Chwab, &quotes, 200.0);
    let p_ource = fo_above_query(Schema::Ource, &quotes, 200.0);
    r.check(
        "FO euter program is state-independent",
        p_euter.hardcoded.is_empty() && p_euter.disjuncts.len() == 1,
        "1 disjunct, no hard-coded schema elements",
    );
    r.check(
        "FO chwab/ource programs hard-code the stocks",
        p_chwab.hardcoded.len() == 2 && p_ource.hardcoded.len() == 2,
        &format!(
            "chwab disjuncts: {}, ource disjuncts: {}",
            p_chwab.disjuncts.len(),
            p_ource.disjuncts.len()
        ),
    );

    // Add a stock: the stale FO program misses it; the IDL query does not.
    let mut quotes2 = quotes.clone();
    quotes2.push((d("3/6/85"), "sun".to_string(), 300.0));
    let db2 = encode(Schema::Ource, &quotes2);
    let stale_hits = run_above_binding(&db2, &p_ource);
    let fresh_hits = run_above_binding(&db2, &fo_above_query(Schema::Ource, &quotes2, 200.0));

    let mut e = Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/5/85", "ibm", 210.0),
        ("3/6/85", "sun", 300.0),
    ]);
    let idl_hits = e.query("?.ource.S(.clsPrice>200)").unwrap();
    r.check(
        "stale FO program silently misses the new stock; IDL does not",
        !stale_hits.contains(&Value::str("sun"))
            && fresh_hits.contains(&Value::str("sun"))
            && idl_hits.column("S").contains(&Value::str("sun")),
        &format!(
            "stale FO: {stale_hits:?}; regenerated FO: {fresh_hits:?}; IDL: {:?}",
            idl_hits.column("S")
        ),
    );
}

/// E9: the paper's stated extensions (§2 "keys, types…", §8 sugar),
/// implemented and demonstrated.
fn e9_extensions(r: &mut Report) {
    use idl::{AttrDecl, RelationSchema, TypeTag};
    println!("\n== E9: extensions the paper calls for (§2, §8) ==");

    // declared schema metadata with rollback
    let mut e = paper_engine();
    e.declare_schema(
        "euter",
        "r",
        RelationSchema {
            key: vec![idl::Name::new("date"), idl::Name::new("stkCode")],
            attrs: [(idl::Name::new("clsPrice"), AttrDecl { ty: TypeTag::Number, nullable: true })]
                .into_iter()
                .collect(),
            foreign_keys: vec![],
        },
    )
    .unwrap();
    println!("    declare key(date, stkCode), clsPrice: number on euter.r");
    println!("    ?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=51)   % duplicate key");
    let err = e.update("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=51)").unwrap_err();
    let intact = e.query("?.euter.r(.date=3/3/85,.stkCode=hp,.clsPrice=50)").unwrap().is_true();
    r.check(
        "key constraint rejects and rolls back",
        err.to_string().contains("duplicate key") && intact,
        &format!("\"{}...\"", &err.to_string()[..60.min(err.to_string().len())]),
    );

    // queryable sys catalog
    e.enable_sys_catalog().unwrap();
    let a = e.query("?.sys.keys(.db=D, .rel=R, .attr=A)").unwrap();
    r.check(
        "sys catalog exposes declared keys to higher-order queries",
        a.len() == 2,
        &format!("{a}"),
    );

    // SQL sugar with a higher-order table name
    println!("    SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200");
    let o = e.execute_sql("SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200").unwrap();
    r.check(
        "SQL sugar supports metadata querying",
        o.answers().map(|a| a.column("S")) == Some(vec![Value::str("ibm")]),
        &format!("{o}"),
    );
}
