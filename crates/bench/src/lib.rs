//! Shared fixtures for the benchmark suite and the experiment runner.
//!
//! Every bench (B1–B10 in DESIGN.md) builds its universes through these
//! helpers so sizes and seeds are consistent across benchmarks and across
//! runs.

use idl::Engine;
use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_statement, Request, Statement};
use idl_storage::Store;
use idl_workload::stock::{
    generate_sharded_store, generate_store, sharded_union_rules, ShardedStockConfig, StockConfig,
};

/// The size sweep used by the scaling benches: (stocks, days).
pub const SIZES: &[(usize, usize)] = &[(5, 20), (10, 50), (20, 100), (40, 150)];

/// A labelled size for Criterion group ids.
pub fn size_label(stocks: usize, days: usize) -> String {
    format!("{stocks}stk_x_{days}d")
}

/// A store holding the three-schema stock universe at a size.
pub fn stock_store(stocks: usize, days: usize) -> Store {
    generate_store(&StockConfig::sized(stocks, days))
}

/// An engine over the stock universe at a size.
pub fn stock_engine(stocks: usize, days: usize) -> Engine {
    Engine::from_store(stock_store(stocks, days))
}

/// An engine with the paper's full two-level mapping installed
/// (unified view + customized views + standard update programs).
pub fn mapped_engine(stocks: usize, days: usize) -> Engine {
    let mut e = stock_engine(stocks, days);
    idl::transparency::install_two_level_mapping(&mut e).expect("standard mapping installs");
    e
}

/// An engine over the sharded multi-feed universe with the two-stratum
/// per-shard view program installed (one independent rule per shard per
/// stratum — the parallel-fixpoint workload), evaluating with `threads`
/// fixpoint workers.
pub fn sharded_engine(shards: usize, stocks: usize, days: usize, threads: usize) -> Engine {
    let cfg = ShardedStockConfig::sized(shards, stocks, days);
    let mut e = Engine::from_store(generate_sharded_store(&cfg));
    let opts = e.options().rebuild().threads(threads).build();
    e.set_options(opts);
    e.add_rules(&sharded_union_rules(&cfg)).expect("sharded rules install");
    e
}

/// Parses a source that must be a single request.
pub fn request(src: &str) -> Request {
    match parse_statement(src).expect("benchmark query parses") {
        Statement::Request(r) => r,
        other => panic!("expected a request, got {other}"),
    }
}

/// Runs a pure query against a store with the given options, returning the
/// answer count (the thing benches blackbox).
pub fn run_query(store: &Store, req: &Request, opts: EvalOptions) -> usize {
    Evaluator::new(store, opts).query(req).expect("benchmark query evaluates").len()
}

/// A price threshold that stays selective but non-empty across the size
/// sweep (generated prices cluster around 50–150).
pub fn selective_threshold() -> f64 {
    180.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let store = stock_store(5, 20);
        assert_eq!(store.relation("euter", "r").unwrap().len(), 100);
        let req = request("?.euter.r(.stkCode=S, .clsPrice>0)");
        assert!(run_query(&store, &req, EvalOptions::default()) > 0);
    }

    #[test]
    fn sharded_engine_saturates_workers() {
        let mut e = sharded_engine(6, 3, 5, 4);
        let stats = e.refresh_views().unwrap();
        assert_eq!(stats.strata.len(), 2, "union then per-shard maxima");
        for s in &stats.strata {
            assert_eq!(s.rules, 6, "one rule per shard");
            assert_eq!(s.workers, 4, "pool saturated at 4 threads");
            assert_eq!(s.rule_evals_per_worker.len(), 4);
        }
        assert_eq!(e.store().relation("dbU", "q").unwrap().len(), 6 * 3 * 5);
        // each dbHi.hN holds one maximum-price day per stock (modulo ties)
        for si in 0..6 {
            let hi = e.store().relation("dbHi", &format!("h{si}")).unwrap();
            assert!(hi.len() >= 3 && hi.len() <= 5, "h{si}: {}", hi.len());
        }
    }

    #[test]
    fn mapped_engine_has_views() {
        let mut e = mapped_engine(3, 5);
        assert!(e.query("?.dbI.p(.stk=stk000)").unwrap().is_true());
        assert!(e.query("?.dbO.stk001(.clsPrice=P)").unwrap().is_true());
    }
}
