//! # `idl-workload` — deterministic workload generators
//!
//! The paper evaluates nothing empirically; this crate generates the
//! synthetic multidatabase universes the reproduction's experiments and
//! benchmarks run on (DESIGN.md §2's substitution for the vendors' stock
//! feeds). Everything is seeded and deterministic: the same configuration
//! always produces the same universe, so benchmark runs are comparable and
//! property tests are reproducible.
//!
//! * [`stock`] — the paper's three-schema stock market at configurable
//!   scale (#stocks × #days), with optional value discrepancies between
//!   sources (§6's `pnew`) and cross-database name mappings (`mapCE` /
//!   `mapOE`).
//! * [`empdept`] — the §2 `emp`/`dept` universe used by the view-update
//!   discussion.
//! * [`random`] — random nested objects and universes for property-based
//!   tests.

#![warn(missing_docs)]

pub mod empdept;
pub mod random;
pub mod stock;

pub use stock::{Quote, ShardedStockConfig, StockConfig, StockUniverse};
