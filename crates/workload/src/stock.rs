//! Scalable three-schema stock universes.

use idl_object::{Date, Name, TupleObj, Value};
use idl_storage::Store;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One closing quote.
#[derive(Clone, PartialEq, Debug)]
pub struct Quote {
    /// Trading day.
    pub date: Date,
    /// Stock code (euter's naming).
    pub stock: String,
    /// Closing price.
    pub price: f64,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct StockConfig {
    /// Number of distinct stocks.
    pub stocks: usize,
    /// Number of consecutive trading days.
    pub days: usize,
    /// RNG seed (determinism).
    pub seed: u64,
    /// First trading day.
    pub start: Date,
    /// Mean initial price.
    pub base_price: f64,
    /// Per-day multiplicative volatility (e.g. 0.02 = ±2%).
    pub volatility: f64,
    /// Fraction of quotes whose `ource` copy disagrees with `euter`
    /// (value discrepancies for the `pnew` reconciliation experiment).
    pub discrepancy_rate: f64,
    /// Use per-database stock code aliases (`hp` / `c_hp` / `o_hp`),
    /// exercising the §6 name-mapping rules.
    pub name_mapped: bool,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            stocks: 10,
            days: 30,
            seed: 42,
            start: Date::new(1985, 3, 3).expect("valid date"),
            base_price: 100.0,
            volatility: 0.02,
            discrepancy_rate: 0.0,
            name_mapped: false,
        }
    }
}

impl StockConfig {
    /// Convenience: `stocks × days` at the default seed.
    pub fn sized(stocks: usize, days: usize) -> Self {
        StockConfig { stocks, days, ..Default::default() }
    }

    /// Total quotes this configuration generates.
    pub fn quote_count(&self) -> usize {
        self.stocks * self.days
    }
}

/// A generated universe plus its bookkeeping.
pub struct StockUniverse {
    /// The quotes, in (stock, date) order.
    pub quotes: Vec<Quote>,
    /// The universe tuple holding all three schemata (plus `dbI.mapCE`
    /// and `dbI.mapOE` when name-mapped).
    pub universe: Value,
    /// Per-quote ource price (differs from `quotes` under discrepancies).
    pub ource_prices: Vec<f64>,
}

/// Stock code for index `i`: `stk000`, `stk001`, … (euter naming).
pub fn stock_code(i: usize) -> String {
    format!("stk{i:03}")
}

/// chwab alias under name mapping.
pub fn chwab_code(i: usize) -> String {
    format!("c_stk{i:03}")
}

/// ource alias under name mapping.
pub fn ource_code(i: usize) -> String {
    format!("o_stk{i:03}")
}

/// Generates quotes: a geometric random walk per stock.
pub fn generate_quotes(cfg: &StockConfig) -> Vec<Quote> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.quote_count());
    for i in 0..cfg.stocks {
        let mut price = cfg.base_price * (0.5 + rng.gen::<f64>());
        let code = stock_code(i);
        for d in 0..cfg.days {
            let shock = 1.0 + cfg.volatility * (rng.gen::<f64>() * 2.0 - 1.0);
            price = (price * shock).max(0.01);
            out.push(Quote {
                date: cfg.start.plus_days(d as i64),
                stock: code.clone(),
                // round to cents for readable experiment output
                price: (price * 100.0).round() / 100.0,
            });
        }
    }
    out
}

/// Builds the full three-schema universe from a configuration.
pub fn generate(cfg: &StockConfig) -> StockUniverse {
    let quotes = generate_quotes(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
    let ource_prices: Vec<f64> = quotes
        .iter()
        .map(|q| {
            if cfg.discrepancy_rate > 0.0 && rng.gen::<f64>() < cfg.discrepancy_rate {
                (q.price * 1.01 * 100.0).round() / 100.0
            } else {
                q.price
            }
        })
        .collect();

    let mut u = TupleObj::new();

    // euter
    let mut euter_rel = idl_object::SetObj::new();
    for q in &quotes {
        // One-shot construction: the interior map is built once, not
        // grown attribute-by-attribute.
        euter_rel.insert(Value::Tuple(TupleObj::from_pairs([
            ("date", Value::date(q.date)),
            ("stkCode", Value::str(&q.stock)),
            ("clsPrice", Value::float(q.price)),
        ])));
    }
    let mut euter = TupleObj::new();
    euter.insert("r", Value::Set(euter_rel));
    u.insert("euter", Value::Tuple(euter));

    // chwab: one tuple per date, one attribute per stock
    let alias_c = |s: &str| -> Name {
        if cfg.name_mapped {
            Name::new(format!("c_{s}"))
        } else {
            Name::new(s)
        }
    };
    let mut by_date: BTreeMap<Date, TupleObj> = BTreeMap::new();
    for q in &quotes {
        let t = by_date.entry(q.date).or_insert_with(|| {
            let mut t = TupleObj::new();
            t.insert("date", Value::date(q.date));
            t
        });
        t.insert(alias_c(&q.stock), Value::float(q.price));
    }
    let mut chwab_rel = idl_object::SetObj::new();
    for (_d, t) in by_date {
        chwab_rel.insert(Value::Tuple(t));
    }
    let mut chwab = TupleObj::new();
    chwab.insert("r", Value::Set(chwab_rel));
    u.insert("chwab", Value::Tuple(chwab));

    // ource: one relation per stock
    let alias_o = |s: &str| -> Name {
        if cfg.name_mapped {
            Name::new(format!("o_{s}"))
        } else {
            Name::new(s)
        }
    };
    let mut ource = TupleObj::new();
    for (q, op) in quotes.iter().zip(&ource_prices) {
        let rel = ource.get_or_insert_with(alias_o(&q.stock), Value::empty_set);
        let t =
            TupleObj::from_pairs([("date", Value::date(q.date)), ("clsPrice", Value::float(*op))]);
        rel.as_set_mut().expect("relation is a set").insert(Value::Tuple(t));
    }
    u.insert("ource", Value::Tuple(ource));

    // name mappings
    if cfg.name_mapped {
        let mut map_ce = idl_object::SetObj::new();
        let mut map_oe = idl_object::SetObj::new();
        for i in 0..cfg.stocks {
            map_ce.insert(Value::Tuple(TupleObj::from_pairs([
                ("c", Value::str(chwab_code(i))),
                ("e", Value::str(stock_code(i))),
            ])));
            map_oe.insert(Value::Tuple(TupleObj::from_pairs([
                ("o", Value::str(ource_code(i))),
                ("e", Value::str(stock_code(i))),
            ])));
        }
        let mut maps = TupleObj::new();
        maps.insert("mapCE", Value::Set(map_ce));
        maps.insert("mapOE", Value::Set(map_oe));
        u.insert("dbMaps", Value::Tuple(maps));
    }

    StockUniverse { quotes, universe: Value::Tuple(u), ource_prices }
}

/// Builds a [`Store`] directly.
pub fn generate_store(cfg: &StockConfig) -> Store {
    Store::from_universe(generate(cfg).universe).expect("generated universe is a tuple")
}

/// Parallel quote generation for large configurations: stocks are
/// partitioned across threads (each stock's random walk is seeded
/// independently from `cfg.seed` and the stock index, so the result is
/// identical to [`generate_quotes`] regardless of thread count — verified
/// by test).
pub fn generate_quotes_parallel(cfg: &StockConfig, threads: usize) -> Vec<Quote> {
    let threads = threads.max(1).min(cfg.stocks.max(1));
    let mut out: Vec<Vec<Quote>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move |_| {
                let mut part = Vec::new();
                let mut i = t;
                while i < cfg.stocks {
                    gen_one_stock(&cfg, i, &mut part);
                    i += threads;
                }
                part
            }));
        }
        for h in handles {
            out.push(h.join().expect("generator thread panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut quotes: Vec<Quote> = out.into_iter().flatten().collect();
    quotes.sort_by(|a, b| a.stock.cmp(&b.stock).then(a.date.cmp(&b.date)));
    quotes
}

/// One stock's random walk, seeded independently of the others so parallel
/// and serial generation agree.
fn gen_one_stock(cfg: &StockConfig, i: usize, out: &mut Vec<Quote>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64));
    let mut price = cfg.base_price * (0.5 + rng.gen::<f64>());
    let code = stock_code(i);
    for d in 0..cfg.days {
        let shock = 1.0 + cfg.volatility * (rng.gen::<f64>() * 2.0 - 1.0);
        price = (price * shock).max(0.01);
        out.push(Quote {
            date: cfg.start.plus_days(d as i64),
            stock: code.clone(),
            price: (price * 100.0).round() / 100.0,
        });
    }
}

/// The baseline's quote representation.
pub fn as_baseline_quotes(quotes: &[Quote]) -> Vec<(Date, String, f64)> {
    quotes.iter().map(|q| (q.date, q.stock.clone(), q.price)).collect()
}

/// Configuration for the *sharded* multi-database universe: `shards`
/// independent source databases (`feed00`, `feed01`, …), each holding a
/// euter-style `r` relation over its own disjoint stock codes. Paired with
/// [`sharded_union_rules`] this yields strata with one independent rule per
/// shard — wide enough to saturate the parallel fixpoint's worker pool
/// (the single-feed stock universe tops out at a handful of rules per
/// stratum).
#[derive(Clone, Debug)]
pub struct ShardedStockConfig {
    /// Number of independent source databases.
    pub shards: usize,
    /// Per-shard quote generation. The seed is offset per shard, so shards
    /// carry genuinely different random walks.
    pub per_shard: StockConfig,
}

impl Default for ShardedStockConfig {
    fn default() -> Self {
        ShardedStockConfig { shards: 8, per_shard: StockConfig::sized(4, 15) }
    }
}

impl ShardedStockConfig {
    /// Convenience: `shards` databases of `stocks × days` each.
    pub fn sized(shards: usize, stocks: usize, days: usize) -> Self {
        ShardedStockConfig { shards, per_shard: StockConfig::sized(stocks, days) }
    }

    /// Total quotes across all shards.
    pub fn quote_count(&self) -> usize {
        self.shards * self.per_shard.quote_count()
    }
}

/// Database name of shard `si`: `feed00`, `feed01`, …
pub fn shard_db(si: usize) -> String {
    format!("feed{si:02}")
}

/// Stock code of stock `i` inside shard `si`. Codes are disjoint across
/// shards so every shard's derived facts are distinct.
pub fn shard_stock_code(si: usize, i: usize) -> String {
    format!("f{si:02}{}", stock_code(i))
}

/// Builds the sharded universe: one `feedNN` database per shard, each with
/// an euter-shaped `r` relation over shard-prefixed stock codes.
pub fn generate_sharded(cfg: &ShardedStockConfig) -> Value {
    let mut u = TupleObj::new();
    for si in 0..cfg.shards {
        let shard_cfg = StockConfig {
            seed: cfg.per_shard.seed.wrapping_add((si as u64).wrapping_mul(0x9E37_79B9)),
            ..cfg.per_shard.clone()
        };
        let mut rel = idl_object::SetObj::new();
        for q in generate_quotes(&shard_cfg) {
            rel.insert(Value::Tuple(TupleObj::from_pairs([
                ("date", Value::date(q.date)),
                ("stkCode", Value::str(format!("f{si:02}{}", q.stock))),
                ("clsPrice", Value::float(q.price)),
            ])));
        }
        let mut db = TupleObj::new();
        db.insert("r", Value::Set(rel));
        u.insert(Name::new(shard_db(si)), Value::Tuple(db));
    }
    Value::Tuple(u)
}

/// Builds a [`Store`] over the sharded universe directly.
pub fn generate_sharded_store(cfg: &ShardedStockConfig) -> Store {
    Store::from_universe(generate_sharded(cfg)).expect("sharded universe is a tuple")
}

/// Two-stratum view program over the sharded universe, one independent
/// rule per shard in *each* stratum:
///
/// * stratum 1 — `dbU.q` unions every feed (`shards` rules, mutually
///   independent: each reads only its own base feed);
/// * stratum 2 — `dbHi.hNN` finds each shard's per-stock maximum-price
///   day, checked against the global union via a negated subgoal
///   (`shards` rules that all read `dbU.q`, so they stratify after it,
///   but are independent of each other — and each is join-heavy, which is
///   what makes the parallel-fixpoint speedup visible).
///
/// With `shards ≥ threads` every fixpoint iteration offers enough
/// runnable rules to keep the whole worker pool busy.
pub fn sharded_union_rules(cfg: &ShardedStockConfig) -> String {
    let mut out = String::new();
    for si in 0..cfg.shards {
        let db = shard_db(si);
        out.push_str(&format!(
            ".dbU.q(.date=D,.stk=S,.clsPrice=P) <- .{db}.r(.date=D,.stkCode=S,.clsPrice=P) ;\n"
        ));
    }
    for si in 0..cfg.shards {
        let db = shard_db(si);
        out.push_str(&format!(
            ".dbHi.h{si}(.date=D,.stk=S,.clsPrice=P) <- .{db}.r(.date=D,.stkCode=S,.clsPrice=P), .dbU.q¬(.stk=S,.clsPrice>P) ;\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&StockConfig::sized(5, 10));
        let b = generate(&StockConfig::sized(5, 10));
        assert_eq!(a.universe, b.universe);
        assert_eq!(a.quotes.len(), 50);
    }

    #[test]
    fn seeds_differ() {
        let a = generate(&StockConfig { seed: 1, ..StockConfig::sized(5, 10) });
        let b = generate(&StockConfig { seed: 2, ..StockConfig::sized(5, 10) });
        assert_ne!(a.universe, b.universe);
    }

    #[test]
    fn three_schemata_align() {
        let g = generate(&StockConfig::sized(4, 7));
        let store = Store::from_universe(g.universe).unwrap();
        assert_eq!(store.relation("euter", "r").unwrap().len(), 28);
        assert_eq!(store.relation("chwab", "r").unwrap().len(), 7);
        assert_eq!(store.relation_names("ource").unwrap().len(), 4);
        for i in 0..4 {
            assert_eq!(store.relation("ource", &stock_code(i)).unwrap().len(), 7);
        }
    }

    #[test]
    fn discrepancies_injected() {
        let cfg = StockConfig { discrepancy_rate: 0.5, ..StockConfig::sized(5, 20) };
        let g = generate(&cfg);
        let diff = g.quotes.iter().zip(&g.ource_prices).filter(|(q, op)| q.price != **op).count();
        assert!(diff > 20 && diff < 80, "≈50% of 100 quotes differ: {diff}");
    }

    #[test]
    fn name_mapping_aliases() {
        let cfg = StockConfig { name_mapped: true, ..StockConfig::sized(2, 3) };
        let g = generate(&cfg);
        let store = Store::from_universe(g.universe).unwrap();
        assert!(store.relation("ource", "o_stk000").is_ok());
        assert!(store.relation("ource", "stk000").is_err());
        assert_eq!(store.relation("dbMaps", "mapCE").unwrap().len(), 2);
        let chwab = store.relation("chwab", "r").unwrap();
        let t = chwab.iter().next().unwrap();
        assert!(t.attr("c_stk000").is_some());
    }

    #[test]
    fn parallel_generation_is_thread_count_invariant() {
        let cfg = StockConfig::sized(13, 17);
        let one = generate_quotes_parallel(&cfg, 1);
        let four = generate_quotes_parallel(&cfg, 4);
        let many = generate_quotes_parallel(&cfg, 32);
        assert_eq!(one, four);
        assert_eq!(one, many);
        assert_eq!(one.len(), 13 * 17);
    }

    #[test]
    fn sharded_universe_shape() {
        let cfg = ShardedStockConfig::sized(6, 3, 4);
        let store = generate_sharded_store(&cfg);
        for si in 0..6 {
            let rel = store.relation(&shard_db(si), "r").unwrap();
            assert_eq!(rel.len(), 12, "shard {si} holds stocks × days quotes");
        }
        // codes are disjoint across shards
        assert_eq!(shard_stock_code(0, 1), "f00stk001");
        assert_ne!(shard_stock_code(0, 1), shard_stock_code(1, 1));
        // deterministic, and shards differ from each other
        let again = generate_sharded(&cfg);
        assert_eq!(generate_sharded(&cfg), again);
        assert_ne!(
            store.relation(&shard_db(0), "r").unwrap(),
            store.relation(&shard_db(1), "r").unwrap()
        );
    }

    #[test]
    fn sharded_rules_cover_every_shard() {
        let cfg = ShardedStockConfig::sized(5, 2, 3);
        let rules = sharded_union_rules(&cfg);
        assert_eq!(rules.matches("<-").count(), 10, "one rule per shard per stratum");
        for si in 0..5 {
            assert!(rules.contains(&format!(".{}.r", shard_db(si))));
            assert!(rules.contains(&format!(".dbHi.h{si}")));
        }
    }

    #[test]
    fn prices_positive_and_rounded() {
        let g = generate(&StockConfig::sized(3, 50));
        for q in &g.quotes {
            assert!(q.price > 0.0);
            assert_eq!((q.price * 100.0).round() / 100.0, q.price);
        }
    }
}
