//! Random object / universe generation for property tests.
//!
//! Plain seeded generators (not proptest strategies) so they can be used
//! from benches too; the root test-suite wraps them in proptest via
//! seed-driven strategies.

use idl_object::{SetObj, TupleObj, Value};
use idl_storage::Store;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape bounds for random objects.
#[derive(Clone, Copy, Debug)]
pub struct RandomConfig {
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum children per tuple or set node.
    pub max_width: usize,
    /// Number of databases in a random universe.
    pub databases: usize,
    /// Relations per database.
    pub relations: usize,
    /// Tuples per relation.
    pub tuples: usize,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig { max_depth: 3, max_width: 4, databases: 3, relations: 3, tuples: 8 }
    }
}

const ATTR_POOL: &[&str] = &["a", "b", "c", "d", "e", "k", "v", "x", "y", "z"];

/// A random atom (never null — null atoms satisfy nothing, which makes
/// differential tests vacuous).
pub fn random_atom(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4) {
        0 => Value::int(rng.gen_range(-50i64..50)),
        1 => Value::float((rng.gen_range(-500i64..500) as f64) / 10.0),
        2 => Value::str(ATTR_POOL[rng.gen_range(0..ATTR_POOL.len())]),
        _ => Value::bool(rng.gen()),
    }
}

/// A random object of bounded depth/width.
pub fn random_value(rng: &mut StdRng, depth: usize, width: usize) -> Value {
    if depth == 0 {
        return random_atom(rng);
    }
    match rng.gen_range(0..3) {
        0 => random_atom(rng),
        1 => {
            let mut t = TupleObj::new();
            for _ in 0..rng.gen_range(0..=width) {
                let attr = ATTR_POOL[rng.gen_range(0..ATTR_POOL.len())];
                t.insert(attr, random_value(rng, depth - 1, width));
            }
            Value::Tuple(t)
        }
        _ => {
            let mut s = SetObj::new();
            for _ in 0..rng.gen_range(0..=width) {
                s.insert(random_value(rng, depth - 1, width));
            }
            Value::Set(s)
        }
    }
}

/// A random *flat-ish* relation tuple: atoms under the pooled attributes,
/// with occasional missing attributes (heterogeneous sets) and occasional
/// nested values.
pub fn random_relation_tuple(rng: &mut StdRng, cfg: &RandomConfig) -> Value {
    let mut t = TupleObj::new();
    for attr in ATTR_POOL.iter().take(4) {
        match rng.gen_range(0..10) {
            0 => {} // attribute absent: varying arity
            1 => {
                t.insert(*attr, random_value(rng, cfg.max_depth.saturating_sub(1), 2));
            }
            _ => {
                t.insert(*attr, random_atom(rng));
            }
        }
    }
    Value::Tuple(t)
}

/// A random universe with catalog-conforming shape.
pub fn random_universe(seed: u64, cfg: &RandomConfig) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut u = TupleObj::new();
    for d in 0..cfg.databases {
        let mut db = TupleObj::new();
        for r in 0..cfg.relations {
            let mut rel = SetObj::new();
            for _ in 0..rng.gen_range(0..=cfg.tuples) {
                rel.insert(random_relation_tuple(&mut rng, cfg));
            }
            db.insert(format!("r{r}"), Value::Set(rel));
        }
        u.insert(format!("db{d}"), Value::Tuple(db));
    }
    Value::Tuple(u)
}

/// A random store.
pub fn random_store(seed: u64, cfg: &RandomConfig) -> Store {
    Store::from_universe(random_universe(seed, cfg)).expect("universe is a tuple")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let cfg = RandomConfig::default();
        assert_eq!(random_universe(9, &cfg), random_universe(9, &cfg));
        assert_ne!(random_universe(9, &cfg), random_universe(10, &cfg));
    }

    #[test]
    fn respects_catalog_shape() {
        let cfg = RandomConfig::default();
        let store = random_store(3, &cfg);
        assert_eq!(store.database_names().len(), cfg.databases);
        for db in store.database_names() {
            assert_eq!(store.relation_names(db.as_str()).unwrap().len(), cfg.relations);
        }
    }

    #[test]
    fn depth_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = random_value(&mut rng, 3, 3);
            assert!(v.depth() <= 4);
        }
    }
}
