//! The §2 `emp`/`dept` universe (view-update motivation).
//!
//! ```text
//! empMgr(Name, Mgr) ← emp(Name, Dno), dept(Dno, Mgr).
//! ```
//!
//! The paper uses this classic view to motivate update programs: updating
//! an employee's manager through `empMgr` is ambiguous (change the
//! employee's department, or change the department's manager?), so the
//! schema administrator must state the translation.

use idl_object::{SetObj, TupleObj, Value};
use idl_storage::Store;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the emp/dept generator.
#[derive(Clone, Copy, Debug)]
pub struct EmpDeptConfig {
    /// Number of employees.
    pub employees: usize,
    /// Number of departments.
    pub departments: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for EmpDeptConfig {
    fn default() -> Self {
        EmpDeptConfig { employees: 100, departments: 10, seed: 7 }
    }
}

/// Generates a universe with `hr.emp(name, dno)` and `hr.dept(dno, mgr)`.
pub fn generate(cfg: &EmpDeptConfig) -> Value {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut emp = SetObj::new();
    for i in 0..cfg.employees {
        let mut t = TupleObj::new();
        t.insert("name", Value::str(format!("emp{i:04}")));
        t.insert("dno", Value::int(rng.gen_range(0..cfg.departments) as i64));
        emp.insert(Value::Tuple(t));
    }
    let mut dept = SetObj::new();
    for d in 0..cfg.departments {
        let mut t = TupleObj::new();
        t.insert("dno", Value::int(d as i64));
        // the manager is one of the employees
        t.insert("mgr", Value::str(format!("emp{:04}", rng.gen_range(0..cfg.employees.max(1)))));
        dept.insert(Value::Tuple(t));
    }
    let mut hr = TupleObj::new();
    hr.insert("emp", Value::Set(emp));
    hr.insert("dept", Value::Set(dept));
    let mut u = TupleObj::new();
    u.insert("hr", Value::Tuple(hr));
    Value::Tuple(u)
}

/// Builds a store directly.
pub fn generate_store(cfg: &EmpDeptConfig) -> Store {
    Store::from_universe(generate(cfg)).expect("generated universe is a tuple")
}

/// The `empMgr` view rule of §2, in IDL syntax.
pub fn emp_mgr_rule() -> &'static str {
    ".hr.empMgr(.name=N, .mgr=M) <- .hr.emp(.name=N, .dno=D), .hr.dept(.dno=D, .mgr=M) ;"
}

/// The two alternative update programs §2 discusses for changing a
/// manager through the view: move the employee, or replace the
/// department's manager. The administrator installs exactly one.
pub fn move_employee_program() -> &'static str {
    "
    .hr.setMgr(.name=N, .mgr=M) ->
        .hr.dept(.dno=D2, .mgr=M),
        .hr.emp(.name=N, .dno=D1),
        .hr.emp-(.name=N, .dno=D1),
        .hr.emp+(.name=N, .dno=D2) ;
    "
}

/// Alternative translation: change the department's manager.
pub fn change_dept_manager_program() -> &'static str {
    "
    .hr.setMgr2(.name=N, .mgr=M) ->
        .hr.emp(.name=N, .dno=D),
        .hr.dept(.dno=D, .mgr=Old),
        .hr.dept-(.dno=D, .mgr=Old),
        .hr.dept+(.dno=D, .mgr=M) ;
    "
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_references() {
        let cfg = EmpDeptConfig { employees: 20, departments: 4, seed: 1 };
        let store = generate_store(&cfg);
        assert_eq!(store.relation("hr", "emp").unwrap().len(), 20);
        assert_eq!(store.relation("hr", "dept").unwrap().len(), 4);
        // every employee's dno references an existing department
        let depts: Vec<Value> = store
            .relation("hr", "dept")
            .unwrap()
            .iter()
            .map(|t| t.attr("dno").unwrap().clone())
            .collect();
        for e in store.relation("hr", "emp").unwrap().iter() {
            assert!(depts.contains(e.attr("dno").unwrap()));
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&EmpDeptConfig::default());
        let b = generate(&EmpDeptConfig::default());
        assert_eq!(a, b);
    }
}
