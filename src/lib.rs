//! Umbrella crate for the IDL reproduction workspace.
//!
//! This crate exists to host the top-level `examples/` and `tests/`
//! directories; all functionality lives in the `crates/*` members and is
//! re-exported here for convenience.

pub use idl as engine;
pub use idl_baseline as baseline;
pub use idl_eval as eval;
pub use idl_lang as lang;
pub use idl_object as object;
pub use idl_storage as storage;
pub use idl_workload as workload;
