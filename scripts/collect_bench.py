#!/usr/bin/env python3
"""Collects Criterion medians from target/criterion into a flat table.

Used to fill EXPERIMENTS.md after `cargo bench`:

    python3 scripts/collect_bench.py
"""
import glob
import json


def fmt(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.0f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns / 1e6:.2f} ms"


def main() -> None:
    rows = {}
    for est in glob.glob("target/criterion/**/new/estimates.json", recursive=True):
        parts = est.split("/")
        label = "/".join(parts[2:-2])
        with open(est) as f:
            rows[label] = json.load(f)["median"]["point_estimate"]
    for label in sorted(rows):
        print(f"{label:68s} {fmt(rows[label])}")


if __name__ == "__main__":
    main()
