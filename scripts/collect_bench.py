#!/usr/bin/env python3
"""Collects Criterion medians from target/criterion and emits evidence files.

Used to fill EXPERIMENTS.md after `cargo bench`:

    python3 scripts/collect_bench.py

Prints a flat table of every benchmark's median, then writes one
`BENCH_<id>.json` per B-experiment (grouped by the `B<N>_` label prefix)
into the repository root, so measured numbers can be committed alongside
the write-up.
"""
import collections
import glob
import json
import re


def fmt(ns: float) -> str:
    if ns < 1e3:
        return f"{ns:.0f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns / 1e6:.2f} ms"


def main() -> None:
    rows = {}
    for est in glob.glob("target/criterion/**/new/estimates.json", recursive=True):
        parts = est.split("/")
        label = "/".join(parts[2:-2])
        with open(est) as f:
            rows[label] = json.load(f)["median"]["point_estimate"]
    for label in sorted(rows):
        print(f"{label:68s} {fmt(rows[label])}")

    by_bench = collections.defaultdict(dict)
    for label, ns in rows.items():
        m = re.match(r"(B\d+)_", label)
        by_bench[m.group(1) if m else "misc"][label] = ns
    for bid, entries in sorted(by_bench.items()):
        path = f"BENCH_{bid}.json"
        with open(path, "w") as f:
            json.dump(
                {"bench": bid, "median_ns": dict(sorted(entries.items()))},
                f,
                indent=2,
                sort_keys=True,
            )
            f.write("\n")
        print(f"wrote {path} ({len(entries)} benchmarks)")


if __name__ == "__main__":
    main()
