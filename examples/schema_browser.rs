//! Schema browsing in an autonomous multidatabase federation.
//!
//! §4.3 remarks that metadata queries "are very useful in a heterogeneous
//! database environment where all the databases are autonomously
//! administered" — you cannot assume you know the schemas. This example
//! builds a federation of randomly-shaped databases and explores it purely
//! through higher-order queries.
//!
//! ```text
//! cargo run --example schema_browser
//! ```

use idl::{Engine, EngineError};
use idl_workload::random::{random_store, RandomConfig};

fn main() -> Result<(), EngineError> {
    let cfg = RandomConfig { databases: 4, relations: 3, tuples: 12, ..RandomConfig::default() };
    let mut engine = Engine::from_store(random_store(7, &cfg));

    // What databases exist? (we pretend not to know)
    let dbs = engine.query("?.X.Y")?;
    println!("databases discovered: {:?}", dbs.column("X"));

    // Full catalog: every (database, relation) pair.
    println!("\ncatalog:");
    for row in engine.query("?.D.R")?.iter() {
        println!("  {row}");
    }

    // Which attributes appear where? Group by attribute name.
    let attrs = engine.query("?.D.R(.A=V)")?;
    let mut names = attrs.column("A");
    names.sort();
    names.dedup();
    println!("\nattributes in use anywhere: {names:?}");

    // Schema overlap: relations sharing an attribute with the first
    // non-empty relation — candidates for integration.
    let first = engine.query("?.D.R(.A=V)")?;
    let row = first.iter().next().expect("some relation is non-empty");
    let db0 = row.get(&idl_lang::Var::new("D")).unwrap().to_string();
    let r0 = row.get(&idl_lang::Var::new("R")).unwrap().to_string();
    println!("\nreference relation: {db0}.{r0}");
    let overlap = engine.query(&format!("?.{db0}.{r0}(.A=V1), .D.R(.A=V2), D != {db0}"))?;
    let mut pairs: Vec<String> = overlap
        .iter()
        .filter_map(|s| {
            let d = s.get(&idl_lang::Var::new("D"))?;
            let r = s.get(&idl_lang::Var::new("R"))?;
            let a = s.get(&idl_lang::Var::new("A"))?;
            Some(format!("{d}.{r} shares .{a}"))
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    println!("\nintegration candidates for {db0}.{r0}:");
    for p in pairs.iter().take(8) {
        println!("  {p}");
    }

    // Value-driven discovery: which (db, relation, attribute) triples hold
    // the value 7 anywhere? Pure data→metadata query.
    let sevens = engine.query("?.D.R(.A=7)")?;
    println!("\nplaces storing the value 7: {} site(s)", sevens.len());
    for s in sevens.iter().take(5) {
        println!("  {s}");
    }

    // Build a *derived* catalog relation from metadata — data and metadata
    // flowing both ways (the heart of the paper):
    engine.add_rules(".meta.catalog(.db=D, .rel=R) <- .D.R(.A=V) ;")?;
    let n = engine.query("?.meta.catalog(.db=D, .rel=R)")?.len();
    println!("\nmaterialised meta.catalog with {n} (db, rel) facts");

    Ok(())
}
