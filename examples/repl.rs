//! An interactive IDL shell.
//!
//! ```text
//! cargo run --example repl
//! ```
//!
//! Starts with the paper's miniature stock universe loaded. Type IDL
//! statements (queries `?…`, rules `head <- body`, update programs
//! `head -> body`); terminate each with `;` or a newline. Meta-commands:
//!
//! * `:help` — summary
//! * `:schema` — show the catalog
//! * `:mapping` — install the paper's full two-level mapping
//! * `:analyze <request>` — run binding analysis without executing
//! * `:quit`

use idl::{Engine, Outcome};
use std::io::{self, BufRead, Write};

fn main() {
    let mut engine = Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/3/85", "ibm", 160.0),
        ("3/4/85", "hp", 62.0),
        ("3/4/85", "ibm", 155.0),
        ("3/5/85", "hp", 61.0),
        ("3/5/85", "ibm", 210.0),
    ]);

    println!("IDL shell — paper stock universe loaded (:help for commands)");
    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("idl> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" => break,
            ":help" => {
                println!("  ?.euter.r(.stkCode=S, .clsPrice>200)   query");
                println!("  ?.euter.r+(.date=3/6/85,.stkCode=x,.clsPrice=1)   update");
                println!("  .dbI.p(.stk=S) <- .euter.r(.stkCode=S)   view rule");
                println!("  .dbU.del(.stk=S) -> .euter.r-(.stkCode=S)   update program");
                println!("  SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200   (sugar)");
                println!("  :schema  :mapping  :analyze <request>  :quit");
            }
            ":schema" => {
                for db in engine.store().database_names() {
                    let rels = engine.store().relation_names(db.as_str()).unwrap_or_default();
                    let marks: Vec<String> = rels
                        .iter()
                        .map(|r| {
                            let n = engine
                                .store()
                                .relation(db.as_str(), r.as_str())
                                .map(|s| s.len())
                                .unwrap_or(0);
                            format!("{r}({n})")
                        })
                        .collect();
                    let derived = if engine.derived_catalog().touches_db(db.as_str()) {
                        "  [derived]"
                    } else {
                        ""
                    };
                    println!("  {db}: {}{derived}", marks.join(", "));
                }
            }
            ":mapping" => match idl::transparency::install_two_level_mapping(&mut engine) {
                Ok(()) => println!("  installed dbI + dbE/dbC/dbO + update programs"),
                Err(e) => println!("  error: {e}"),
            },
            _ if line.to_ascii_lowercase().starts_with("select")
                || line.to_ascii_lowercase().starts_with("insert")
                || line.to_ascii_lowercase().starts_with("delete") =>
            {
                match engine.execute_sql(line) {
                    Ok(o) => println!("{o}"),
                    Err(e) => println!("  error: {e}"),
                }
            }
            _ if line.starts_with(":analyze") => {
                let src = line.trim_start_matches(":analyze").trim();
                match engine.analyze(src) {
                    Ok(issues) if issues.is_empty() => println!("  no binding issues"),
                    Ok(issues) => {
                        for i in issues {
                            println!("  warning: {i}");
                        }
                    }
                    Err(e) => println!("  error: {e}"),
                }
            }
            src => match engine.execute(src) {
                Ok(outcomes) => {
                    for o in outcomes {
                        match o {
                            Outcome::Answers { .. } => println!("{o}"),
                            other => println!("  {other}"),
                        }
                    }
                }
                Err(e) => println!("  error: {e}"),
            },
        }
    }
    println!("bye");
}
