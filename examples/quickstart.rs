//! Quickstart: the paper's running example in two minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the three schematically discrepant stock databases, asks the
//! same question of each, unifies them with one view, and updates through
//! an update program.

use idl::{Engine, EngineError};

fn main() -> Result<(), EngineError> {
    // 1. Three databases, same facts, three schemata (paper §1):
    //    euter.r(date, stkCode, clsPrice)   — stocks are DATA
    //    chwab.r(date, hp, ibm, …)          — stocks are ATTRIBUTES
    //    ource.hp(date, clsPrice), …        — stocks are RELATIONS
    let mut engine = Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/3/85", "ibm", 160.0),
        ("3/4/85", "hp", 62.0),
        ("3/4/85", "ibm", 155.0),
        ("3/5/85", "hp", 61.0),
        ("3/5/85", "ibm", 210.0),
    ]);

    // 2. "Did any stock ever close above $200?" — one intention, three
    //    queries; the variable S ranges over data, attribute names, and
    //    relation names respectively (§4.3).
    println!("-- higher-order queries --");
    for q in
        ["?.euter.r(.stkCode=S, .clsPrice>200)", "?.chwab.r(.S>200)", "?.ource.S(.clsPrice>200)"]
    {
        let answer = engine.query(q)?;
        println!("{q}\n  => S = {:?}", answer.column("S"));
    }

    // 3. Metadata browsing: databases, relations, attribute search (§4.3).
    println!("\n-- metadata browsing --");
    println!("databases:            {:?}", engine.query("?.X.Y")?.column("X"));
    println!("relations in ource:   {:?}", engine.query("?.ource.Y")?.column("Y"));
    println!(
        "who has a stkCode attr: {:?}.{:?}",
        engine.query("?.X.Y(.stkCode)")?.column("X"),
        engine.query("?.X.Y(.stkCode)")?.column("Y")
    );

    // 4. Database transparency: one unified view over all three (§6),
    //    plus customized views shaped like each original schema,
    //    plus the standard update programs (§7).
    idl::transparency::install_two_level_mapping(&mut engine)?;
    println!("\n-- unified view --");
    let a = engine.query("?.dbI.p(.stk=S, .date=D, .clsPrice>200)")?;
    println!("?.dbI.p(.clsPrice>200) => {a}");

    // 5. dbO is a *higher-order view*: one derived relation per stock.
    println!("\n-- higher-order view dbO --");
    println!("dbO relations: {:?}", engine.query("?.dbO.Y")?.column("Y"));

    // 6. Update through an update program: one logical insert, three
    //    physical inserts — row, attribute, and relation (§7.1).
    println!("\n-- update programs --");
    engine.update("?.dbU.insStk(.stk=sun, .date=3/5/85, .price=34)")?;
    println!("after insStk(sun):");
    println!("  euter row:      {}", engine.query("?.euter.r(.stkCode=sun)")?.is_true());
    println!("  chwab attribute: {}", engine.query("?.chwab.r(.sun=P)")?.is_true());
    println!("  ource relation:  {}", engine.query("?.ource.sun(.clsPrice=34)")?.is_true());
    println!("  dbO relation:    {}", engine.query("?.dbO.sun(.clsPrice=34)")?.is_true());

    // 7. And a view update, routed through the administrator's program.
    engine.update("?.dbE.r+(.date=3/6/85, .stkCode=dec, .clsPrice=80)")?;
    println!(
        "\nview insert via .dbE.r+ routed to all bases: ource.dec = {}",
        engine.query("?.ource.dec(.clsPrice=80)")?.is_true()
    );

    Ok(())
}
