//! Stock-market integration at scale: the motivating scenario of §1 with a
//! generated workload — value discrepancies between vendors, name-mapped
//! stock codes, reconciliation, and cross-database analytics.
//!
//! ```text
//! cargo run --example stock_integration
//! ```

use idl::{Engine, EngineError, Value};
use idl_workload::stock::{generate, StockConfig};

fn main() -> Result<(), EngineError> {
    // A universe where the three vendors disagree: 10% of ource's quotes
    // differ from euter's, and each vendor uses its own stock codes.
    let cfg = StockConfig {
        stocks: 12,
        days: 60,
        seed: 2026,
        discrepancy_rate: 0.10,
        name_mapped: true,
        ..StockConfig::default()
    };
    let generated = generate(&cfg);
    let mut engine = Engine::from_universe(generated.universe)?;

    println!(
        "universe: {} stocks x {} days, {} quotes per vendor, name-mapped codes",
        cfg.stocks,
        cfg.days,
        cfg.quote_count()
    );

    // The name-mapped unified view (§6's final example): mapCE / mapOE
    // translate chwab's `c_*` and ource's `o_*` codes to euter's.
    engine.add_rules(
        "
        .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
        .dbI.p(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapCE(.c=S,.e=E), .chwab.r(.date=D,.S=P) ;
        .dbI.p(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapOE(.o=S,.e=E), .ource.S(.date=D,.clsPrice=P) ;
        ",
    )?;

    // Discrepancy report: (stock, date) pairs where vendors disagree —
    // two distinct prices under the same unified key.
    engine.add_rules(
        "
        .dbI.conflict(.stk=S, .date=D, .a=P1, .b=P2) <-
            .dbI.p(.date=D,.stk=S,.clsPrice=P1),
            .dbI.p(.date=D,.stk=S,.clsPrice=P2),
            P1 < P2 ;
        ",
    )?;
    let conflicts = engine.query("?.dbI.conflict(.stk=S,.date=D,.a=A,.b=B)")?;
    println!("\nvendor discrepancies detected: {}", conflicts.len());
    for s in conflicts.iter().take(5) {
        println!("  {s}");
    }

    // Reconciliation (pnew): euter wins where it has a quote.
    engine.add_rules(
        "
        .dbI.pnew(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
        .dbI.pnew(.date=D,.stk=S,.clsPrice=P) <-
            .dbI.p(.date=D,.stk=S,.clsPrice=P), .euter.r¬(.date=D,.stkCode=S) ;
        ",
    )?;
    let p = engine.query("?.dbI.p(.stk=stk000,.date=D,.clsPrice=P)")?;
    let pnew = engine.query("?.dbI.pnew(.stk=stk000,.date=D,.clsPrice=P)")?;
    println!(
        "\nstk000: unified view has {} (date,price) pairs, reconciled view has {}",
        p.len(),
        pnew.len()
    );

    // Analytics over the reconciled view: all-time high per stock, the
    // paper's negation idiom, for a few stocks.
    println!("\nall-time highs (via ¬ exists-higher):");
    for i in 0..4 {
        let stk = format!("stk{i:03}");
        let q = format!(
            "?.dbI.pnew(.stk={stk},.clsPrice=P,.date=D), .dbI.pnew¬(.stk={stk},.clsPrice>P)"
        );
        let a = engine.query(&q)?;
        println!("  {stk}: high = {:?} on {:?}", a.column("P"), a.column("D"));
    }

    // Cross-vendor audit: stocks quoted above a threshold *anywhere*,
    // asked directly against the raw (name-mapped!) schemata.
    let t = 160.0;
    let mut offenders: Vec<Value> = Vec::new();
    offenders.extend(engine.query(&format!("?.euter.r(.stkCode=S,.clsPrice>{t})"))?.column("S"));
    offenders.extend(engine.query(&format!("?.chwab.r(.S>{t})"))?.column("S"));
    offenders.extend(engine.query(&format!("?.ource.S(.clsPrice>{t})"))?.column("S"));
    offenders.sort();
    offenders.dedup();
    println!("\nstocks above {t} in any vendor's coding: {offenders:?}");

    Ok(())
}
