//! The §2 view-update problem, made executable: the `empMgr` view, its
//! translation ambiguity, and how IDL's update programs let the schema
//! administrator resolve it (§7).
//!
//! ```text
//! cargo run --example view_updates
//! ```

use idl::{Engine, EngineError};
use idl_workload::empdept::{
    change_dept_manager_program, emp_mgr_rule, generate_store, move_employee_program, EmpDeptConfig,
};

fn main() -> Result<(), EngineError> {
    let cfg = EmpDeptConfig { employees: 12, departments: 3, seed: 11 };

    // empMgr(Name, Mgr) <- emp(Name, Dno), dept(Dno, Mgr)   [§2]
    println!("view rule: {}", emp_mgr_rule().trim());

    // The ambiguity: to change emp0004's manager we can EITHER move the
    // employee to the manager's department OR replace their department's
    // manager. IDL doesn't guess — the administrator installs a program.
    let show = |e: &mut Engine, who: &str| -> Result<(), EngineError> {
        let a = e.query(&format!("?.hr.empMgr(.name={who}, .mgr=M)"))?;
        println!("  empMgr({who}) = {:?}", a.column("M"));
        Ok(())
    };

    println!("\n=== translation 1: move the employee ===");
    let mut e = Engine::from_store(generate_store(&cfg));
    e.add_rules(emp_mgr_rule())?;
    e.execute(move_employee_program())?;
    show(&mut e, "emp0004")?;
    // pick a target manager who actually manages a department — "move the
    // employee" is only defined for those (the program's query fails
    // quietly otherwise, §7.1)
    let target = e.query("?.hr.dept(.dno=0, .mgr=M)")?.column("M")[0].to_string();
    let dno_before = e.query("?.hr.emp(.name=emp0004, .dno=D)")?.column("D");
    e.update(&format!("?.hr.setMgr(.name=emp0004, .mgr={target})"))?;
    show(&mut e, "emp0004")?;
    let dno_after = e.query("?.hr.emp(.name=emp0004, .dno=D)")?.column("D");
    println!("  emp0004 department: {dno_before:?} -> {dno_after:?} (employee moved to {target}'s department)");
    let dept_count = e.query("?.hr.dept(.dno=D,.mgr=M)")?.len();
    println!("  departments untouched: {dept_count} rows");

    println!("\n=== translation 2: change the department's manager ===");
    let mut e = Engine::from_store(generate_store(&cfg));
    e.add_rules(emp_mgr_rule())?;
    e.execute(change_dept_manager_program())?;
    show(&mut e, "emp0004")?;
    e.update("?.hr.setMgr2(.name=emp0004, .mgr=emp0000)")?;
    show(&mut e, "emp0004")?;
    let dno = e.query("?.hr.emp(.name=emp0004, .dno=D)")?.column("D");
    println!("  emp0004 department unchanged: {dno:?}");
    let colleagues = e.query("?.hr.emp(.dno=D, .name=N), .hr.emp(.name=emp0004, .dno=D)")?;
    println!(
        "  …but all {} colleagues in that department changed manager too \
         (the administrator chose this semantics)",
        colleagues.column("N").len()
    );

    // Faithfulness: in both translations the *view* reflects the decree.
    println!("\nBoth programs make `empMgr(emp0004) = emp0000` true henceforth —");
    println!("the choice of base translation is policy, stated in the language (§7.2).");

    Ok(())
}
