//! Offline shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! syn/quote: the item's `proc_macro::TokenStream` is walked directly and
//! the impl is emitted as a string, then re-parsed. Covers what this
//! workspace derives on — non-generic structs (named / tuple / unit) and
//! enums in the externally-tagged representation, plus the container
//! attribute `#[serde(transparent)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What shape the deriving item has.
enum ItemKind {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — arity.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Arity of `V(A, ...)`.
    Tuple(usize),
    /// Field names of `V { a: A, ... }`.
    Struct(Vec<String>),
}

struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    let mut is_enum = false;

    // Attributes and visibility precede the `struct` / `enum` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") && body.contains("transparent") {
                        transparent = true;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (deriving on `{name}`)");
    }

    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde_derive: expected struct body for `{name}`, got {other:?}"),
        }
    };

    Item { name, transparent, kind }
}

/// Splits a field/variant list on top-level commas. Groups are atomic
/// tokens, so only angle-bracket depth (generic arguments in field types)
/// needs tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Pulls the field name out of one `attrs vis name: Type` chunk.
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // attr: `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) => return id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream).iter().map(|c| field_name(c)).collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut i = 0;
            // skip variant attributes
            while matches!(chunk.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                i += 2;
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                None => VariantKind::Unit,
                other => panic!(
                    "serde_derive: unsupported variant shape for `{name}`: {other:?}"
                ),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---- codegen helpers ------------------------------------------------------

const CONTENT: &str = "serde::content::Content";
const ERROR: &str = "serde::content::Error";

fn ser_header(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> {CONTENT} {{\n{body}\n}}\n\
         }}\n"
    )
}

fn de_header(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_content(__c: &{CONTENT}) -> Result<Self, {ERROR}> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// `to_content` expressions for a comma-joined field map literal.
fn map_entries(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), serde::Serialize::to_content({})),",
                access(f)
            )
        })
        .collect()
}

/// `from_content` initialisers for a named-field constructor, reading each
/// field out of the map `__m` (missing fields read as `Null`, which lets
/// `Option` fields default to `None`).
fn field_initialisers(owner: &str, fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_content({source}.get(\"{f}\")\
                     .unwrap_or(&{CONTENT}::Null))\
                     .map_err(|__e| {ERROR}(format!(\"{owner}.{f}: {{}}\", __e.0)))?,"
            )
        })
        .collect()
}

// ---- Serialize ------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        ItemKind::UnitStruct => ser_header(name, &format!("{CONTENT}::Null")),
        ItemKind::TupleStruct(1) => {
            // newtype structs (and `transparent`) delegate to the inner value
            ser_header(name, "serde::Serialize::to_content(&self.0)")
        }
        ItemKind::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i}),"))
                .collect();
            ser_header(name, &format!("{CONTENT}::Seq(vec![{items}])"))
        }
        ItemKind::NamedStruct(fields) if item.transparent => {
            assert_eq!(
                fields.len(),
                1,
                "serde_derive shim: #[serde(transparent)] needs exactly one field on `{name}`"
            );
            ser_header(
                name,
                &format!("serde::Serialize::to_content(&self.{})", fields[0]),
            )
        }
        ItemKind::NamedStruct(fields) => {
            let entries = map_entries(fields, |f| format!("&self.{f}"));
            ser_header(name, &format!("{CONTENT}::Map(vec![{entries}])"))
        }
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => {CONTENT}::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => {CONTENT}::Map(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {CONTENT}::Map(vec![(\"{vn}\".to_string(), \
                                 {CONTENT}::Seq(vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries = map_entries(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => {CONTENT}::Map(vec![(\"{vn}\".to_string(), \
                                 {CONTENT}::Map(vec![{entries}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            ser_header(name, &format!("match self {{ {arms} }}"))
        }
    }
}

// ---- Deserialize ----------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        ItemKind::UnitStruct => de_header(
            name,
            &format!(
                "match __c {{\n\
                     {CONTENT}::Null => Ok({name}),\n\
                     __other => Err({ERROR}::expected(\"null for unit struct {name}\", __other)),\n\
                 }}"
            ),
        ),
        ItemKind::TupleStruct(1) => de_header(
            name,
            &format!("Ok({name}(serde::Deserialize::from_content(__c)?))"),
        ),
        ItemKind::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("serde::Deserialize::from_content(&__items[{i}])?,"))
                .collect();
            de_header(
                name,
                &format!(
                    "match __c {{\n\
                         {CONTENT}::Seq(__items) if __items.len() == {n} => \
                             Ok({name}({items})),\n\
                         __other => Err({ERROR}::expected(\
                             \"sequence of {n} for tuple struct {name}\", __other)),\n\
                     }}"
                ),
            )
        }
        ItemKind::NamedStruct(fields) if item.transparent => {
            assert_eq!(
                fields.len(),
                1,
                "serde_derive shim: #[serde(transparent)] needs exactly one field on `{name}`"
            );
            de_header(
                name,
                &format!(
                    "Ok({name} {{ {}: serde::Deserialize::from_content(__c)? }})",
                    fields[0]
                ),
            )
        }
        ItemKind::NamedStruct(fields) => {
            let inits = field_initialisers(name, fields, "__c");
            de_header(
                name,
                &format!(
                    "match __c {{\n\
                         {CONTENT}::Map(_) => Ok({name} {{ {inits} }}),\n\
                         __other => Err({ERROR}::expected(\"map for struct {name}\", __other)),\n\
                     }}"
                ),
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_content(__v)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_content(&__items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __v {{\n\
                                     {CONTENT}::Seq(__items) if __items.len() == {n} => \
                                         Ok({name}::{vn}({items})),\n\
                                     __other => Err({ERROR}::expected(\
                                         \"sequence of {n} for variant {name}::{vn}\", __other)),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits =
                                field_initialisers(&format!("{name}::{vn}"), fields, "__v");
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"))
                        }
                    }
                })
                .collect();
            de_header(
                name,
                &format!(
                    "match __c {{\n\
                         {CONTENT}::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\n\
                             __other => Err({ERROR}(format!(\
                                 \"unknown variant `{{}}` for {name}\", __other))),\n\
                         }},\n\
                         {CONTENT}::Map(__entries) if __entries.len() == 1 => {{\n\
                             let (__k, __v) = &__entries[0];\n\
                             match __k.as_str() {{\n\
                                 {data_arms}\n\
                                 __other => Err({ERROR}(format!(\
                                     \"unknown variant `{{}}` for {name}\", __other))),\n\
                             }}\n\
                         }}\n\
                         __other => Err({ERROR}::expected(\
                             \"string or single-key map for enum {name}\", __other)),\n\
                     }}"
                ),
            )
        }
    }
}
