//! Offline shim for `criterion`.
//!
//! A wall-clock micro-benchmark harness with criterion's call surface:
//! `criterion_group!` / `criterion_main!`, `Criterion::default()` builder
//! methods, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `BenchmarkId`.
//!
//! No statistics beyond mean/min/max, no plots, no baselines. CLI
//! behaviour kept: a positional argument filters benchmarks by substring
//! and `--test` runs every routine exactly once (what `cargo bench --
//! --test` and CI smoke jobs rely on); other flags are ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. Only a hint in real
/// criterion; ignored here beyond API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-runs per sample).
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Identifies one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a `Display`able parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Harness configuration and CLI state.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Untimed warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Timed measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies the process CLI arguments (`--test`, name filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // flags cargo or users pass that take no value here
                "--bench" | "--exact" | "--nocapture" | "--quiet" | "--verbose" | "-v" => {}
                // ignored value-taking flags from the real CLI
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--warm-up-time" | "--measurement-time" | "--output-format"
                | "--plotting-backend" | "--color" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    fn run_one<F>(&mut self, full_name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match (&bencher.report, self.test_mode) {
            (_, true) => println!("Testing {full_name} ... ok"),
            (Some(r), false) => {
                println!(
                    "{full_name:<60} time: [{} {} {}] ({} iterations)",
                    fmt_duration(r.min),
                    fmt_duration(r.mean),
                    fmt_duration(r.max),
                    r.iterations,
                );
                write_estimates(full_name, r);
            }
            (None, false) => println!("{full_name:<60} (no measurement recorded)"),
        }
    }
}

/// Locates `<target>/criterion`, honouring `CARGO_TARGET_DIR` and
/// otherwise walking up from the CWD (the bench package root under
/// `cargo bench`) to the workspace root's `Cargo.lock`.
fn criterion_dir() -> Option<std::path::PathBuf> {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Some(std::path::PathBuf::from(dir).join("criterion"));
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir.join("target").join("criterion"));
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Persists a report as `target/criterion/<name>/new/estimates.json` in
/// the (subset of the) upstream criterion layout that downstream tooling
/// reads (`scripts/collect_bench.py` globs `**/new/estimates.json` and
/// takes `median.point_estimate`, in nanoseconds). Upstream computes a
/// real median; this shim reports the mean under both keys. Best-effort:
/// a read-only filesystem silently skips persistence.
fn write_estimates(full_name: &str, r: &Report) {
    let Some(root) = criterion_dir() else { return };
    let dir = full_name.split('/').fold(root, |d, part| d.join(part)).join("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mean_ns = r.mean.as_nanos() as f64;
    let json = format!(
        concat!(
            "{{\"mean\":{{\"point_estimate\":{mean}}},",
            "\"median\":{{\"point_estimate\":{mean}}},",
            "\"min\":{{\"point_estimate\":{min}}},",
            "\"max\":{{\"point_estimate\":{max}}},",
            "\"iterations\":{iters}}}"
        ),
        mean = mean_ns,
        min = r.min.as_nanos() as f64,
        max = r.max.as_nanos() as f64,
        iters = r.iterations,
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks `f` with a shared borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    iterations: u64,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine` called back-to-back.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            return;
        }

        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }

        // Measurement: up to `sample_size` samples of one timed call each,
        // stopping early once the measurement budget is exhausted.
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut iterations = 0u64;
        let budget_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
            iterations += 1;
            if Instant::now() >= budget_end {
                break;
            }
        }
        self.report = Some(Report {
            mean: total / iterations.max(1) as u32,
            min,
            max,
            iterations,
        });
    }
}

/// Re-export point so `criterion::black_box` works like upstream.
pub use std::hint::black_box;

/// Declares a benchmark group function. Supports both the plain
/// `criterion_group!(name, target, ...)` form and the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn batched_setup_runs_per_sample() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| black_box(v.len()), BatchSize::LargeInput)
        });
    }

    #[test]
    fn id_renders_with_parameter() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::new("f", "").render(), "f");
    }
}
