//! Offline shim for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, values round-trip
//! through an owned [`content::Content`] tree — a superset of the JSON
//! data model. [`Serialize`] lowers a value into the tree; [`Deserialize`]
//! rebuilds a value from it. `serde_json` (the only data format in this
//! workspace) renders the tree to/from JSON text.
//!
//! The derive macros live in `serde_derive` and are re-exported here, so
//! `#[derive(Serialize, Deserialize)]` and `use serde::{Serialize,
//! Deserialize}` work exactly as with the real crate. Supported container
//! shapes: non-generic structs (named / tuple / unit) and enums with the
//! externally-tagged representation, plus `#[serde(transparent)]`.

pub use serde_derive::{Deserialize, Serialize};

pub mod content {
    //! The self-describing data model values serialise into.

    use std::fmt;

    /// A serialised value: the JSON data model plus distinct integer
    /// variants so `i64`/`u64` round-trip losslessly.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Content {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A signed integer.
        I64(i64),
        /// An unsigned integer (only produced for values above `i64::MAX`).
        U64(u64),
        /// A float.
        F64(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Content>),
        /// An ordered map with string keys (JSON object).
        Map(Vec<(String, Content)>),
    }

    impl Content {
        /// A short label for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Content::Null => "null",
                Content::Bool(_) => "bool",
                Content::I64(_) | Content::U64(_) => "integer",
                Content::F64(_) => "float",
                Content::Str(_) => "string",
                Content::Seq(_) => "sequence",
                Content::Map(_) => "map",
            }
        }

        /// The value under `key` if this is a map containing it.
        pub fn get(&self, key: &str) -> Option<&Content> {
            match self {
                Content::Map(entries) => {
                    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }
    }

    /// Deserialisation failure: what was expected vs what the tree held.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Error(pub String);

    impl Error {
        /// Builds a mismatch error.
        pub fn expected(what: &str, found: &Content) -> Self {
            Error(format!("expected {what}, found {}", found.kind()))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

use content::{Content, Error};

/// A value that can be lowered into the [`Content`] data model.
pub trait Serialize {
    /// Lowers `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---- primitives -----------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if *self <= i64::MAX as u64 {
            Content::I64(*self as i64)
        } else {
            Content::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::I64(v) if *v >= 0 => Ok(*v as u64),
            Content::I64(v) => Err(Error(format!("negative integer {v} for u64"))),
            Content::U64(v) => Ok(*v),
            other => Err(Error::expected("integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---- strings --------------------------------------------------------------

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(std::sync::Arc::from)
    }
}

impl Serialize for std::rc::Rc<str> {
    fn to_content(&self) -> Content {
        Content::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for std::rc::Rc<str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(std::rc::Rc::from)
    }
}

// ---- smart pointers / option ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

// ---- sequences ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let slot = it
                                .next()
                                .ok_or_else(|| Error("tuple too short".into()))?;
                            $name::from_content(slot)?
                        },)+);
                        if it.next().is_some() {
                            return Err(Error("tuple too long".into()));
                        }
                        Ok(out)
                    }
                    other => Err(Error::expected("sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

// ---- maps -----------------------------------------------------------------

/// Serialises a map key: it must lower to a string.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_content() {
        Content::Str(s) => s,
        Content::I64(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        other => panic!("map keys must serialise to strings, got {}", other.kind()),
    }
}

/// Deserialises a map key from its string form.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::from_content(&Content::Str(key.to_owned())).or_else(|_| {
        // integer-keyed maps: retry as a number
        key.parse::<i64>()
            .ok()
            .ok_or_else(|| Error(format!("cannot rebuild map key from {key:?}")))
            .and_then(|v| K::from_content(&Content::I64(v)))
    })
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // sort for deterministic output
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::expected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::content::Content;
    use super::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let c = v.to_content();
        let back = T::from_content(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42i64);
        round_trip(-7i32);
        round_trip(u64::MAX);
        round_trip(2.5f64);
        round_trip(true);
        round_trip("hello".to_string());
        round_trip(Some(3u8));
        round_trip(Option::<u8>::None);
        round_trip(vec![1i64, 2, 3]);
        round_trip((1i64, "x".to_string()));
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        m.insert("b".to_string(), 2);
        let c = m.to_content();
        assert!(matches!(&c, Content::Map(e) if e.len() == 2));
        round_trip(m);
    }

    #[test]
    fn arc_str_round_trips() {
        let a: std::sync::Arc<str> = std::sync::Arc::from("shared");
        let c = a.to_content();
        let back: std::sync::Arc<str> = Deserialize::from_content(&c).unwrap();
        assert_eq!(&*back, "shared");
    }

    #[test]
    fn mismatches_error() {
        assert!(i64::from_content(&Content::Str("x".into())).is_err());
        assert!(bool::from_content(&Content::I64(1)).is_err());
        assert!(Vec::<i64>::from_content(&Content::Bool(true)).is_err());
    }
}
