//! Offline API-compatible subset of `mio`: a readiness-driven I/O event
//! queue over raw file descriptors.
//!
//! Provides the registration surface the workspace's event-loop server
//! uses — [`Poll`], [`Registry`], [`Events`], [`Token`], [`Interest`],
//! [`unix::SourceFd`] and a cross-thread [`Waker`] — implemented on
//! `epoll(7)` on Linux and on portable `poll(2)` elsewhere, with no
//! dependency beyond the platform C library the Rust runtime already
//! links.
//!
//! Differences from the real `mio`, chosen for this workspace:
//!
//! * Registration is **level-triggered by default** (the server's frame
//!   state machines re-arm naturally); edge-triggered readiness is
//!   available through [`Registry::register_with`] and
//!   [`Trigger::Edge`]. The `poll(2)` fallback approximates edge as
//!   level (readiness is recomputed per call, so the approximation is
//!   safe: callers may see extra events, never fewer).
//! * Only `RawFd` sources are supported, via [`unix::SourceFd`] — which
//!   is how the workspace registers `std::net` sockets.
//! * [`Waker`] events are drained internally before being reported, so
//!   a level-triggered waker never spins the loop.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

/// Token associating a readiness event with its registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (includes peer hang-up).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether this interest includes reads.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether this interest includes writes.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// How readiness is reported: on every poll while the condition holds
/// (level), or once per transition into readiness (edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Trigger {
    /// Report while ready (the default; never misses buffered bytes).
    #[default]
    Level,
    /// Report on transitions only (`EPOLLET`; the caller must drain).
    Edge,
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    closed: bool,
}

impl Event {
    /// The token the ready source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (data, or a hang-up that `read` will report).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Write readiness.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Error condition on the source (`EPOLLERR`).
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Peer closed its end (`EPOLLHUP`/`EPOLLRDHUP`).
    pub fn is_read_closed(&self) -> bool {
        self.closed
    }
}

/// Event buffer filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { buf: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.buf.iter()
    }

    /// Whether the last poll returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

pub mod unix {
    //! Adapters for registering raw file descriptors.
    use std::os::fd::RawFd;

    /// Adapter registering a borrowed `RawFd` with the poller (the only
    /// source kind this shim supports).
    pub struct SourceFd<'a>(pub &'a RawFd);
}

/// Handle for registering sources; obtained from [`Poll::registry`].
///
/// Registration is thread-safe; polling itself stays on one thread.
pub struct Registry {
    backend: sys::Backend,
    /// Waker fds by token, drained before their events are reported so
    /// level-triggered wakers never spin the loop.
    wakers: Mutex<HashMap<usize, RawFd>>,
}

impl Registry {
    /// Registers `source` for `interest` under `token`, level-triggered.
    pub fn register(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.backend.register(*source.0, token, interest, Trigger::Level)
    }

    /// [`Registry::register`] with an explicit [`Trigger`].
    pub fn register_with(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        self.backend.register(*source.0, token, interest, trigger)
    }

    /// Changes the interest (and trigger back to level) of a registered
    /// source.
    pub fn reregister(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.backend.reregister(*source.0, token, interest, Trigger::Level)
    }

    /// [`Registry::reregister`] with an explicit [`Trigger`].
    pub fn reregister_with(
        &self,
        source: &mut unix::SourceFd<'_>,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        self.backend.reregister(*source.0, token, interest, trigger)
    }

    /// Removes a source from the poller.
    pub fn deregister(&self, source: &mut unix::SourceFd<'_>) -> io::Result<()> {
        self.backend.deregister(*source.0)
    }
}

/// The readiness queue: `epoll` on Linux, `poll(2)` elsewhere.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh poller.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry { backend: sys::Backend::new()?, wakers: Mutex::new(HashMap::new()) },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` blocks indefinitely), or a signal interrupts the
    /// wait (reported as zero events, like a timeout).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.buf.clear();
        self.registry.backend.poll(&mut events.buf, events.capacity, timeout)?;
        // Drain waker fds so their level-triggered readiness resets.
        let wakers = self.registry.wakers.lock().unwrap_or_else(|p| p.into_inner());
        for ev in &events.buf {
            if let Some(&fd) = wakers.get(&ev.token().0) {
                sys::drain(fd);
            }
        }
        Ok(())
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread.
///
/// Implemented with an `eventfd` (Linux) or a self-pipe; the fd is
/// registered under `token` and delivered as an ordinary readable event,
/// pre-drained by the poller.
pub struct Waker {
    write_fd: RawFd,
    /// The registered (read) end, closed on drop when distinct.
    read_fd: RawFd,
}

impl Waker {
    /// Creates a waker delivering events under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::waker_pair()?;
        registry.backend.register(read_fd, token, Interest::READABLE, Trigger::Level)?;
        registry.wakers.lock().unwrap_or_else(|p| p.into_inner()).insert(token.0, read_fd);
        Ok(Waker { write_fd, read_fd })
    }

    /// Queues one wake-up (idempotent while unconsumed).
    pub fn wake(&self) -> io::Result<()> {
        sys::wake(self.write_fd)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.write_fd);
        if self.read_fd != self.write_fd {
            sys::close_fd(self.read_fd);
        }
    }
}

// ------------------------------------------------------------------ sys

#[cfg(target_os = "linux")]
mod sys {
    //! Linux backend: `epoll(7)` + `eventfd(2)`, declared directly
    //! against the C library (no `libc` crate in this offline build).
    use super::{Event, Interest, Token, Trigger};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest, trigger: Trigger) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.is_readable() {
            m |= EPOLLIN;
        }
        if interest.is_writable() {
            m |= EPOLLOUT;
        }
        if trigger == Trigger::Edge {
            m |= EPOLLET;
        }
        m
    }

    pub(super) struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            trigger: Trigger,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask(interest, trigger), token.0 as u64)
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            trigger: Trigger,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask(interest, trigger), token.0 as u64)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn poll(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; capacity];
            let timeout_ms = match timeout {
                None => -1,
                // round up so a 1ns timeout does not busy-spin at 0ms
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32
                    + if d.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 },
            };
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), capacity as i32, timeout_ms) };
            let n = match cvt(n) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: Token(ev.data as usize),
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR) != 0,
                    error: bits & EPOLLERR != 0,
                    closed: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// `(read_fd, write_fd)` — one eventfd serving both roles.
    pub(super) fn waker_pair() -> io::Result<(RawFd, RawFd)> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok((fd, fd))
    }

    pub(super) fn wake(fd: RawFd) -> io::Result<()> {
        let one: u64 = 1;
        let ret = unsafe { write(fd, &one as *const u64 as *const u8, 8) };
        if ret == 8 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            // counter saturated: readiness is already pending
            return Ok(());
        }
        Err(err)
    }

    pub(super) fn drain(fd: RawFd) {
        let mut buf = [0u8; 8];
        unsafe { read(fd, buf.as_mut_ptr(), 8) };
    }

    pub(super) fn close_fd(fd: RawFd) {
        unsafe { close(fd) };
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable backend: `poll(2)` over a registration table, waker via
    //! self-pipe. Edge triggering degrades to level (see module docs).
    use super::{Event, Interest, Token, Trigger};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0x4;

    pub(super) struct Backend {
        table: Mutex<BTreeMap<RawFd, (Token, Interest)>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Ok(Backend { table: Mutex::new(BTreeMap::new()) })
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            _trigger: Trigger,
        ) -> io::Result<()> {
            self.table.lock().unwrap_or_else(|p| p.into_inner()).insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            trigger: Trigger,
        ) -> io::Result<()> {
            self.register(fd, token, interest, trigger)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.table.lock().unwrap_or_else(|p| p.into_inner()).remove(&fd);
            Ok(())
        }

        pub(super) fn poll(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let snapshot: Vec<(RawFd, Token, Interest)> = {
                let table = self.table.lock().unwrap_or_else(|p| p.into_inner());
                table.iter().map(|(fd, (t, i))| (*fd, *t, *i)).collect()
            };
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.is_readable() { POLLIN } else { 0 }
                        | if interest.is_writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32
                    + if d.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 },
            };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pf, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if pf.revents == 0 || out.len() >= capacity {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: pf.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pf.revents & (POLLOUT | POLLERR) != 0,
                    error: pf.revents & POLLERR != 0,
                    closed: pf.revents & POLLHUP != 0,
                });
            }
            Ok(())
        }
    }

    pub(super) fn waker_pair() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        unsafe {
            fcntl(fds[0], F_SETFL, O_NONBLOCK);
            fcntl(fds[1], F_SETFL, O_NONBLOCK);
        }
        Ok((fds[0], fds[1]))
    }

    pub(super) fn wake(fd: RawFd) -> io::Result<()> {
        let one = [1u8];
        let ret = unsafe { write(fd, one.as_ptr(), 1) };
        if ret == 1 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(());
        }
        Err(err)
    }

    pub(super) fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                break;
            }
        }
    }

    pub(super) fn close_fd(fd: RawFd) {
        unsafe { close(fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    const CONN: Token = Token(2);

    #[test]
    fn listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        let fd = listener.as_raw_fd();
        poll.registry().register(&mut unix::SourceFd(&fd), LISTENER, Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no connection yet");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == LISTENER && e.is_readable()));

        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        let sfd = served.as_raw_fd();
        poll.registry()
            .register(&mut unix::SourceFd(&sfd), CONN, Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        // level-triggered: the byte stays readable until consumed
        for _ in 0..2 {
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));
        }
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);

        // interest can drop write readiness
        poll.registry().reregister(&mut unix::SourceFd(&sfd), CONN, Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(!events.iter().any(|e| e.token() == CONN && e.is_writable()));

        // peer hang-up reports as readable + closed
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        let hup = events.iter().find(|e| e.token() == CONN).expect("hang-up event");
        assert!(hup.is_readable());
    }

    #[test]
    fn waker_wakes_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), WAKER).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        handle.join().unwrap();
        // drained internally: no further waker event without a new wake()
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(!events.iter().any(|e| e.token() == WAKER));
        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.iter().filter(|e| e.token() == WAKER).count(), 1);
    }

    #[test]
    fn edge_trigger_reports_transitions_once_on_epoll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        let sfd = served.as_raw_fd();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register_with(&mut unix::SourceFd(&sfd), CONN, Interest::READABLE, Trigger::Edge)
            .unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));
        if cfg!(target_os = "linux") {
            // without consuming, an edge-triggered fd does not re-report
            poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert!(events.is_empty(), "edge must not re-fire while unconsumed");
        }
    }
}
