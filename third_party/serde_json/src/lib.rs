//! Offline shim for `serde_json`: renders the shim-serde
//! [`Content`] tree to JSON text and parses it
//! back. Only `to_string` / `from_str` are provided — the workspace uses
//! nothing else.

use serde::content::Content;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON encode/decode failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Parses JSON text and rebuilds a `T`.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: json.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(|e| Error(e.0))
}

// ---- writer ---------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error(format!("cannot serialise non-finite float {v}")));
            }
            // keep integral floats distinguishable from ints
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.bad_token()),
        }
    }

    fn bad_token(&self) -> Error {
        Error(format!("unexpected token at byte {}", self.pos))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // surrogate pair
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("invalid surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("invalid \\u escape".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(!from_str::<bool>(" false ").unwrap());
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\të €".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""ë €""#).unwrap(), "ë €");
        assert_eq!(from_str::<String>(r#""🦀""#).unwrap(), "🦀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>("[1, 2,3 ]").unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![true]);
        m.insert("b".to_string(), vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"a":[true],"b":[]}"#);
        assert_eq!(from_str::<BTreeMap<String, Vec<bool>>>(&json).unwrap(), m);
    }

    #[test]
    fn bad_input_is_error() {
        assert!(from_str::<i64>("not json").is_err());
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("42 trailing").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
