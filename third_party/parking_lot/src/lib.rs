//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! parking_lot API (no poisoning, `lock()` returns the guard directly),
//! backed by `std::sync`. A poisoned std lock — a panic while holding the
//! guard — is transparently recovered, matching parking_lot's behaviour of
//! not propagating poison.

use std::fmt;
use std::sync::{self, PoisonError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&self.0).finish()
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
