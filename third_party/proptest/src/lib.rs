//! Offline shim for `proptest`.
//!
//! Implements the call surface this workspace's property tests use:
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`,
//! `Strategy` with `prop_map` / `prop_filter_map` / `prop_recursive` /
//! `boxed`, `BoxedStrategy`, `Just`, `any`, ranges-as-strategies,
//! `prop::sample::select`, `prop::collection::vec`, `prop::option::of`,
//! and `"\\PC{m,n}"` printable-string patterns.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via the panic message only), no persistence of regression
//! seeds (`*.proptest-regressions` files are ignored), and generation
//! streams differ. Each test function is deterministic: case `i` of test
//! `name` always derives its RNG seed from `(name, i)`.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration. Only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failing (or rejected) test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result type the property body produces.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Value-generation state for one test case.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(seed) }
        }

        /// The case's RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// Drives `body` over `config.cases` deterministic cases. Panics on
    /// the first failing case, reporting its seed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRunner) -> TestCaseResult,
    {
        for case in 0..config.cases {
            // FNV-1a over the test name, mixed with the case index
            let mut acc = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                acc = (acc ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            let seed = acc ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut runner = TestRunner::from_seed(seed);
            if let Err(e) = body(&mut runner) {
                panic!(
                    "proptest `{name}` failed at case {case}/{} (seed {seed:#x}): {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::sync::Arc;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Maps through `f`, regenerating when it returns `None`.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { source: self, whence, f }
        }

        /// Filters generated values, regenerating on `false`.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, whence, f }
        }

        /// Recursive strategies: `self` generates leaves, `recurse` wraps
        /// an inner strategy into a branch, nesting at most `depth` deep.
        /// The size hints of the real crate are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                // lean 2:1 toward leaves so sizes stay tame
                current = Union::new(vec![leaf.clone(), leaf.clone(), branch]).boxed();
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0.new_value(runner)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.source.new_value(runner))
        }
    }

    /// How many regenerations a filter gets before giving up.
    const MAX_REJECTS: usize = 1000;

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.source.new_value(runner)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected {MAX_REJECTS} values: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.source.new_value(runner);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected {MAX_REJECTS} values: {}", self.whence);
        }
    }

    /// Uniform choice between alternatives (what `prop_oneof!` builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let idx = runner.rng().gen_range(0..self.options.len());
            self.options[idx].new_value(runner)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// String patterns: `&'static str` is a strategy like in real
    /// proptest, but only the `\PC{m,n}` shape (m..=n printable chars)
    /// is interpreted; anything else panics.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, runner: &mut TestRunner) -> String {
            let counts = self
                .strip_prefix("\\PC{")
                .and_then(|rest| rest.strip_suffix('}'))
                .and_then(|range| range.split_once(','))
                .and_then(|(m, n)| Some((m.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
            let (min, max) = counts.unwrap_or_else(|| {
                panic!("proptest shim: unsupported string pattern {self:?} (only \\PC{{m,n}})")
            });
            let len = runner.rng().gen_range(min..=max);
            (0..len).map(|_| printable_char(runner)).collect()
        }
    }

    fn printable_char(runner: &mut TestRunner) -> char {
        let rng = runner.rng();
        if rng.gen_bool(0.9) {
            // ASCII printable, space through tilde
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            // printable non-ASCII scalar
            loop {
                let cp = rng.gen_range(0xA0u32..0x2_0000);
                if let Some(c) = char::from_u32(cp) {
                    if !c.is_control() {
                        return c;
                    }
                }
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng().gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            // finite, roughly centred floats — enough for property inputs
            runner.rng().gen_range(-1e9f64..1e9)
        }
    }

    /// The strategy [`any`] returns.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Uniformly picks one of `items` (cloned).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let idx = runner.rng().gen_range(0..self.items.len());
            self.items[idx].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Smallest allowed length.
        pub min: usize,
        /// Largest allowed length (inclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// `None` or `Some(value from s)`, 50/50.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy { inner: s }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.rng().gen_bool(0.5) {
                Some(self.inner.new_value(runner))
            } else {
                None
            }
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy constructors (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines property tests. Each inner `fn` keeps its own attributes
/// (including `#[test]`); arguments are drawn from the strategies on the
/// right of `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__runner| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __runner);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 1usize..=3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(prop::sample::select(vec!["a", "bb"]), 0..4),
            o in prop::option::of(0i64..10),
            m in (0i64..10).prop_map(|n| n * 2),
            u in prop_oneof![Just(1i64), 2i64..5],
        ) {
            prop_assert!(v.len() < 4);
            prop_assert!(o.is_none_or(|n| (0..10).contains(&n)));
            prop_assert_eq!(m % 2, 0);
            prop_assert!((1..5).contains(&u));
        }

        #[test]
        fn string_pattern_sizes(s in "\\PC{0,8}") {
            prop_assert!(s.chars().count() <= 8);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0i64..1000, 3..=3);
        let mut a = crate::test_runner::TestRunner::from_seed(9);
        let mut b = crate::test_runner::TestRunner::from_seed(9);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn filter_map_retries() {
        use crate::strategy::Strategy;
        let strat = (0i64..100).prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        let mut r = crate::test_runner::TestRunner::from_seed(1);
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut r) % 2, 0);
        }
    }
}
