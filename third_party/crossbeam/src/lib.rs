//! Offline shim for `crossbeam`: just `crossbeam::thread::scope`, mapped
//! onto `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from the real crate: a panicking child propagates when the
//! scope exits (std semantics) instead of surfacing through the outer
//! `Result`, so the `Err` arm is effectively unreachable — callers that
//! `.expect()` the scope result behave identically.

/// Scoped thread spawning.
pub mod thread {
    use std::any::Any;

    /// Child-thread panic payload (what `join` returns on panic).
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// child closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// children can spawn siblings, like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> ScopeResult<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads may borrow from the environment;
    /// all children are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn children_can_spawn_siblings() {
            let n = super::scope(|s| {
                let h = s.spawn(|s2| {
                    let inner = s2.spawn(|_| 21u32);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}
