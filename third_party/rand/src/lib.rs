//! Offline shim for `rand` 0.8: the `Rng`/`SeedableRng`/`RngCore` call
//! surface this workspace uses, backed by SplitMix64 (seeding) and
//! xoshiro256** (generation). Deterministic per seed, but the streams do
//! **not** match the real `rand` crate's.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough bounded sampling: multiply-shift on the 64-bit
/// stream (Lemire's method without the rejection step — bias is < 2^-32
/// for every span this workspace uses).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = rng.next_u64() as u128;
    (wide * span) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A random value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real rand).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    macro_rules! named_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                type Seed = [u8; 32];

                fn from_seed(seed: [u8; 32]) -> Self {
                    let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
                    for b in seed {
                        acc = (acc ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    Self::seed_from_u64(acc)
                }

                fn seed_from_u64(state: u64) -> Self {
                    $name(Xoshiro256::from_u64(state))
                }
            }
        };
    }

    named_rng! {
        /// The "standard" seedable generator.
        StdRng
    }
    named_rng! {
        /// The "small, fast" generator (same core here).
        SmallRng
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 2;
            let u = r.gen_range(0usize..=4);
            assert!(u <= 4);
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn range_degenerate_single_value() {
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!(r.gen_range(5u8..6), 5);
        assert_eq!(r.gen_range(5i32..=5), 5);
    }
}
