//! Experiment E8: the first-order inexpressibility demonstration
//! (DESIGN.md; paper §1–§2), plus differential agreement between the IDL
//! engine and the first-order baseline on queries both can express.

use idl::{Engine, Value};
use idl_baseline::datalog::{FoCmp, FoLiteral, FoQuery, FoTerm};
use idl_baseline::encode::{encode, fo_above_query, run_above_binding, Schema};
use idl_baseline::msql::Broadcast;
use idl_object::Date;
use idl_repro as _;
use idl_workload::stock::{as_baseline_quotes, generate, generate_quotes, StockConfig};

fn d(s: &str) -> Date {
    s.parse().unwrap()
}

#[test]
fn e8_fo_program_is_schema_state_dependent() {
    let q1 = vec![(d("3/3/85"), "hp".to_string(), 50.0), (d("3/5/85"), "ibm".to_string(), 210.0)];
    let mut q2 = q1.clone();
    q2.push((d("3/6/85"), "sun".to_string(), 300.0));

    // euter: fixed program
    assert!(fo_above_query(Schema::Euter, &q1, 200.0).hardcoded.is_empty());
    assert_eq!(
        fo_above_query(Schema::Euter, &q1, 200.0).disjuncts.len(),
        fo_above_query(Schema::Euter, &q2, 200.0).disjuncts.len()
    );

    // chwab/ource: program grows with the data
    for schema in [Schema::Chwab, Schema::Ource] {
        let p1 = fo_above_query(schema, &q1, 200.0);
        let p2 = fo_above_query(schema, &q2, 200.0);
        assert!(p2.disjuncts.len() > p1.disjuncts.len(), "{schema:?}");
    }

    // stale program misses the new stock; the IDL query is unchanged
    let db2 = encode(Schema::Ource, &q2);
    let stale = fo_above_query(Schema::Ource, &q1, 200.0);
    assert!(!run_above_binding(&db2, &stale).contains(&Value::str("sun")));

    let mut e = Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/5/85", "ibm", 210.0),
        ("3/6/85", "sun", 300.0),
    ]);
    let hits = e.query("?.ource.S(.clsPrice>200)").unwrap();
    assert_eq!(hits.column("S"), vec![Value::str("ibm"), Value::str("sun")]);
}

#[test]
fn e8_msql_broadcast_needs_matching_schemas() {
    let quotes = vec![(d("3/3/85"), "hp".to_string(), 210.0)];
    let mut b = Broadcast::new();
    b.add_member("euter", encode(Schema::Euter, &quotes));
    b.add_member("ource", encode(Schema::Ource, &quotes));
    let template = FoQuery {
        body: vec![
            FoLiteral::Atom {
                pred: "r".into(),
                args: vec![FoTerm::v("D"), FoTerm::v("S"), FoTerm::v("P")],
            },
            FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(200.0)),
        ],
        outputs: vec!["S".into()],
    };
    let results = b.broadcast(&template);
    assert!(results["euter"].is_ok());
    assert!(results["ource"].is_err(), "template cannot address the discrepant schema");
}

/// B6's correctness side: on euter-shaped data, the IDL engine and the
/// first-order engine agree for a sweep of thresholds and sizes.
#[test]
fn differential_idl_vs_fo_on_euter() {
    for (stocks, days, seed) in [(5usize, 20usize, 1u64), (10, 30, 2), (15, 40, 3)] {
        let cfg = StockConfig { seed, ..StockConfig::sized(stocks, days) };
        let quotes = as_baseline_quotes(&generate_quotes(&cfg));
        let db = encode(Schema::Euter, &quotes);
        let mut e = Engine::from_universe(generate(&cfg).universe).unwrap();
        for threshold in [0.0, 80.0, 120.0, 200.0, 10_000.0] {
            let fo = run_above_binding(&db, &fo_above_query(Schema::Euter, &quotes, threshold));
            let idl = e.query(&format!("?.euter.r(.stkCode=S, .clsPrice>{threshold})")).unwrap();
            let mut fo_stocks: Vec<Value> = fo.into_iter().collect();
            fo_stocks.sort();
            assert_eq!(idl.column("S"), fo_stocks, "threshold {threshold} at {stocks}x{days}");
        }
    }
}

/// The three schemata also agree with each other *through IDL* — the same
/// intention returns the same stock set regardless of representation.
#[test]
fn differential_idl_across_schemata() {
    let cfg = StockConfig::sized(8, 25);
    let mut e = Engine::from_universe(generate(&cfg).universe).unwrap();
    for threshold in [50.0, 100.0, 150.0] {
        let a = e.query(&format!("?.euter.r(.stkCode=S,.clsPrice>{threshold})")).unwrap();
        let b = e.query(&format!("?.chwab.r(.S>{threshold})")).unwrap();
        let c = e.query(&format!("?.ource.S(.clsPrice>{threshold})")).unwrap();
        assert_eq!(a.column("S"), b.column("S"), "threshold {threshold}");
        assert_eq!(a.column("S"), c.column("S"), "threshold {threshold}");
    }
}
