//! Cross-mode differential battery for the semi-naive parallel fixpoint
//! (DESIGN.md "Parallel fixpoint", "Semi-naive delta scheduling").
//!
//! Neither the worker count, the delta scheduling, nor plan compilation
//! is allowed to be a *semantic* knob:
//!
//! * the naive reference schedule (re-run every rule every iteration, one
//!   worker, tree-walk interpreter — reachable via
//!   [`EvalOptions::with_semi_naive`] or `IDL_NAIVE_FIXPOINT=1`)
//!   materialises, on hundreds of random universes, **byte-identical**
//!   universes to semi-naive runs at {1, 2, 4, 8} threads, compiled and
//!   tree-walk — for a wide single-stratum recursive program and for a
//!   negation-stratified two-layer program;
//! * the §4 query battery sees identical answer sets over the
//!   materialised stores;
//! * repeating one parallel refresh yields byte-identical snapshots
//!   (no iteration-order or thread-interleaving leakage into the output).

use idl_eval::rules::RuleEngine;
use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_program, parse_statement, Statement};
use idl_repro as _;
use idl_storage::Store;
use idl_workload::random::{random_store, RandomConfig};
use idl_workload::stock::{generate_sharded_store, sharded_union_rules, ShardedStockConfig};
use proptest::prelude::*;

/// §4-style query shapes run against the materialised stores: selection,
/// higher-order enumeration, joins, negation, ranges.
const BATTERY: &[&str] = &[
    "?.db0.r0(.a=V)",
    "?.D.R(.a=V)",
    "?.D.R(.A=7)",
    "?.db1.r1(.a=X, .b=Y)",
    "?.db0.r0(.a=V), .db1.r1(.a=V)",
    "?.db0.r0(.a=V), .db0.r0¬(.b=V)",
    "?.D.R(.a>0)",
    "?.db2.r2(.a>0, .a<20)",
    "?.X.Y(.c=V), X != db0",
    "?.agg.A(.val=V)",
];

/// One wide stratum: wildcard bodies make every rule's input overlap every
/// head, so all five rules are mutually recursive and iterate together —
/// the widest shape the worker pool sees.
const WIDE_RECURSIVE: &str = "
    .agg.pa(.db=D, .val=V) <- .D.R(.a=V) ;
    .agg.pb(.db=D, .val=V) <- .D.R(.b=V) ;
    .agg.pc(.db=D, .val=V) <- .D.R(.c=V) ;
    .agg.pd(.db=D, .val=V) <- .D.R(.d=V) ;
    .agg.ab(.val=V) <- .agg.pa(.val=V), .agg.pb(.val=V) ;
";

/// Two strata with concrete bodies: six independent collectors, then four
/// consumers including a negated subgoal (which forces the stratification)
/// and a comparison constraint.
const STRATIFIED_NEGATION: &str = "
    .agg.a00(.val=V) <- .db0.r0(.a=V) ;
    .agg.a01(.val=V) <- .db0.r1(.b=V) ;
    .agg.a02(.val=V) <- .db1.r0(.c=V) ;
    .agg.a03(.val=V) <- .db1.r1(.a=V) ;
    .agg.a04(.val=V) <- .db2.r0(.b=V) ;
    .agg.a05(.val=V) <- .db2.r2(.d=V) ;
    .top.join(.val=V) <- .agg.a00(.val=V), .agg.a03(.val=V) ;
    .top.only0(.val=V) <- .agg.a00(.val=V), .agg.a04¬(.val=V) ;
    .top.large(.val=V) <- .agg.a01(.val=V), V > 5 ;
    .top.pair(.x=V, .y=W) <- .agg.a02(.val=V), .agg.a05(.val=W) ;
";

fn rule_engine(src: &str) -> RuleEngine {
    let rules: Vec<_> = parse_program(src)
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            other => panic!("expected a rule, got {other}"),
        })
        .collect();
    RuleEngine::new(rules).unwrap()
}

fn answers(store: &Store, src: &str) -> idl_eval::AnswerSet {
    let Statement::Request(req) = parse_statement(src).unwrap() else { panic!("{src}") };
    Evaluator::new(store, EvalOptions::default())
        .query(&req)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// Materialises `program` over the seed's universe under the given options.
fn materialized(seed: u64, program: &RuleEngine, opts: EvalOptions) -> Store {
    let mut store = random_store(seed, &RandomConfig::default());
    program.materialize(&mut store, opts).unwrap_or_else(|e| panic!("{opts:?}: {e}"));
    store
}

/// The canonical-JSON bytes a snapshot of `store` would contain.
fn universe_json(store: &Store) -> String {
    idl_storage::persist::to_json(store).unwrap()
}

/// The naive reference schedule: every rule, every iteration, one worker,
/// tree-walk interpreter.
fn naive_reference() -> EvalOptions {
    EvalOptions::default().with_threads(1).with_compile(false).with_semi_naive(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cross-mode leg: naive ≡ semi-naive over
    /// {1, 2, 4, 8} threads × {compiled, tree-walk}, down to the bytes a
    /// snapshot would persist, plus identical §4 battery answers.
    #[test]
    fn seminaive_matches_naive_across_modes(seed in 0u64..1_000_000) {
        for program_src in [WIDE_RECURSIVE, STRATIFIED_NEGATION] {
            let program = rule_engine(program_src);
            let naive = materialized(seed, &program, naive_reference());
            let reference = universe_json(&naive);
            for threads in [1usize, 2, 4, 8] {
                for compile in [true, false] {
                    let opts = EvalOptions::default()
                        .with_threads(threads)
                        .with_compile(compile)
                        .with_semi_naive(true);
                    let semi = materialized(seed, &program, opts);
                    prop_assert_eq!(
                        &universe_json(&semi),
                        &reference,
                        "universe bytes diverged from naive at {} threads, compile={} (seed {})",
                        threads,
                        compile,
                        seed
                    );
                    for src in BATTERY {
                        prop_assert_eq!(
                            answers(&naive, src),
                            answers(&semi, src),
                            "answers diverged for {} at {} threads, compile={} (seed {})",
                            src,
                            threads,
                            compile,
                            seed
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_stats_are_coherent(seed in 0u64..1_000_000) {
        let program = rule_engine(STRATIFIED_NEGATION);

        let mut sequential = random_store(seed, &RandomConfig::default());
        let seq_stats = program
            .materialize(&mut sequential, EvalOptions::default().with_threads(1))
            .unwrap();

        let mut parallel = random_store(seed, &RandomConfig::default());
        let par_stats = program
            .materialize(&mut parallel, EvalOptions::default().with_threads(4))
            .unwrap();

        // Set-headed programs add exactly the distinct derived facts, so
        // the count is schedule-independent even though rule_evals and
        // iterations may not be.
        prop_assert_eq!(seq_stats.facts_added, par_stats.facts_added);
        prop_assert_eq!(par_stats.strata.len(), 2, "negation splits the program");
        let mut per_worker_total = 0usize;
        for s in &par_stats.strata {
            prop_assert!(s.workers >= 1 && s.workers <= 4);
            prop_assert_eq!(s.rule_evals_per_worker.len(), s.workers.max(1));
            per_worker_total += s.rule_evals_per_worker.iter().sum::<usize>();
        }
        prop_assert_eq!(
            per_worker_total, par_stats.rule_evals,
            "per-worker telemetry must account for every rule evaluation"
        );
        // Every task evaluation is either a full body or a delta shard.
        for stats in [&seq_stats, &par_stats] {
            prop_assert_eq!(
                stats.full_evals + stats.delta_evals,
                stats.rule_evals,
                "task accounting must partition rule_evals: {:?}",
                stats
            );
        }

        // Idempotence under parallelism: re-deriving adds nothing.
        let again = program
            .materialize(&mut parallel, EvalOptions::default().with_threads(4))
            .unwrap();
        prop_assert_eq!(again.facts_added, 0);
        prop_assert_eq!(sequential.universe(), parallel.universe());
    }
}

/// Satellite determinism check: the *same* parallel refresh, repeated,
/// produces byte-identical snapshots — thread interleavings never leak
/// into the persisted universe.
#[test]
fn parallel_refresh_snapshots_are_byte_identical() {
    let cfg = ShardedStockConfig::sized(8, 4, 10);
    let rules = sharded_union_rules(&cfg);
    let mut reference: Option<String> = None;
    for run in 0..10 {
        let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
        let opts = engine.options().rebuild().threads(4).build();
        engine.set_options(opts);
        engine.add_rules(&rules).unwrap();
        engine.refresh_views().unwrap();
        let json = idl_storage::persist::to_json(engine.store()).unwrap();
        match &reference {
            None => reference = Some(json),
            Some(r) => assert_eq!(&json, r, "refresh {run} diverged from the first"),
        }
    }

    // the naive reference schedule persists exactly those bytes too
    let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
    let opts = engine.options().rebuild().threads(1).semi_naive(false).build();
    engine.set_options(opts);
    engine.add_rules(&rules).unwrap();
    engine.refresh_views().unwrap();
    let naive_json = idl_storage::persist::to_json(engine.store()).unwrap();
    assert_eq!(Some(&naive_json), reference.as_ref(), "naive refresh diverged");

    // and the on-disk snapshot writer emits exactly those bytes
    let path = std::env::temp_dir().join(format!("idl_par_det_{}.json", std::process::id()));
    let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
    let opts = engine.options().rebuild().threads(4).build();
    engine.set_options(opts);
    engine.add_rules(&rules).unwrap();
    engine.refresh_views().unwrap();
    engine.save_snapshot(&path).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(Some(on_disk.trim_end().to_string()), reference.map(|r| r.trim_end().to_string()));
}
