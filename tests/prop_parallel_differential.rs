//! Differential battery for the parallel intra-stratum fixpoint
//! (DESIGN.md "Parallel fixpoint").
//!
//! The worker count is an *evaluation knob*, never a semantic one:
//!
//! * materialising any view program with 2/4/8 threads yields exactly the
//!   universe the sequential schedule yields, on hundreds of random
//!   universes — for a wide single-stratum recursive program and for a
//!   negation-stratified two-layer program;
//! * the §4 query battery sees identical answer sets over the
//!   materialised stores;
//! * repeating one parallel refresh yields byte-identical snapshots
//!   (no iteration-order or thread-interleaving leakage into the output).

use idl_eval::rules::RuleEngine;
use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_program, parse_statement, Statement};
use idl_repro as _;
use idl_storage::Store;
use idl_workload::random::{random_store, RandomConfig};
use idl_workload::stock::{generate_sharded_store, sharded_union_rules, ShardedStockConfig};
use proptest::prelude::*;

/// §4-style query shapes run against the materialised stores: selection,
/// higher-order enumeration, joins, negation, ranges.
const BATTERY: &[&str] = &[
    "?.db0.r0(.a=V)",
    "?.D.R(.a=V)",
    "?.D.R(.A=7)",
    "?.db1.r1(.a=X, .b=Y)",
    "?.db0.r0(.a=V), .db1.r1(.a=V)",
    "?.db0.r0(.a=V), .db0.r0¬(.b=V)",
    "?.D.R(.a>0)",
    "?.db2.r2(.a>0, .a<20)",
    "?.X.Y(.c=V), X != db0",
    "?.agg.A(.val=V)",
];

/// One wide stratum: wildcard bodies make every rule's input overlap every
/// head, so all five rules are mutually recursive and iterate together —
/// the widest shape the worker pool sees.
const WIDE_RECURSIVE: &str = "
    .agg.pa(.db=D, .val=V) <- .D.R(.a=V) ;
    .agg.pb(.db=D, .val=V) <- .D.R(.b=V) ;
    .agg.pc(.db=D, .val=V) <- .D.R(.c=V) ;
    .agg.pd(.db=D, .val=V) <- .D.R(.d=V) ;
    .agg.ab(.val=V) <- .agg.pa(.val=V), .agg.pb(.val=V) ;
";

/// Two strata with concrete bodies: six independent collectors, then four
/// consumers including a negated subgoal (which forces the stratification)
/// and a comparison constraint.
const STRATIFIED_NEGATION: &str = "
    .agg.a00(.val=V) <- .db0.r0(.a=V) ;
    .agg.a01(.val=V) <- .db0.r1(.b=V) ;
    .agg.a02(.val=V) <- .db1.r0(.c=V) ;
    .agg.a03(.val=V) <- .db1.r1(.a=V) ;
    .agg.a04(.val=V) <- .db2.r0(.b=V) ;
    .agg.a05(.val=V) <- .db2.r2(.d=V) ;
    .top.join(.val=V) <- .agg.a00(.val=V), .agg.a03(.val=V) ;
    .top.only0(.val=V) <- .agg.a00(.val=V), .agg.a04¬(.val=V) ;
    .top.large(.val=V) <- .agg.a01(.val=V), V > 5 ;
    .top.pair(.x=V, .y=W) <- .agg.a02(.val=V), .agg.a05(.val=W) ;
";

fn rule_engine(src: &str) -> RuleEngine {
    let rules: Vec<_> = parse_program(src)
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            other => panic!("expected a rule, got {other}"),
        })
        .collect();
    RuleEngine::new(rules).unwrap()
}

fn answers(store: &Store, src: &str) -> idl_eval::AnswerSet {
    let Statement::Request(req) = parse_statement(src).unwrap() else { panic!("{src}") };
    Evaluator::new(store, EvalOptions::default())
        .query(&req)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// Materialises `program` over the seed's universe at a worker count.
fn materialized(seed: u64, program: &RuleEngine, threads: usize) -> Store {
    let mut store = random_store(seed, &RandomConfig::default());
    let opts = EvalOptions::default().with_threads(threads);
    program.materialize(&mut store, opts).unwrap_or_else(|e| panic!("{threads} threads: {e}"));
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parallel_fixpoint_matches_sequential(seed in 0u64..1_000_000) {
        for program_src in [WIDE_RECURSIVE, STRATIFIED_NEGATION] {
            let program = rule_engine(program_src);
            let reference = materialized(seed, &program, 1);
            for threads in [2usize, 4, 8] {
                let parallel = materialized(seed, &program, threads);
                prop_assert_eq!(
                    reference.universe(),
                    parallel.universe(),
                    "universe diverged at {} threads (seed {})",
                    threads,
                    seed
                );
                for src in BATTERY {
                    prop_assert_eq!(
                        answers(&reference, src),
                        answers(&parallel, src),
                        "answers diverged for {} at {} threads (seed {})",
                        src,
                        threads,
                        seed
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_stats_are_coherent(seed in 0u64..1_000_000) {
        let program = rule_engine(STRATIFIED_NEGATION);

        let mut sequential = random_store(seed, &RandomConfig::default());
        let seq_stats = program
            .materialize(&mut sequential, EvalOptions::default().with_threads(1))
            .unwrap();

        let mut parallel = random_store(seed, &RandomConfig::default());
        let par_stats = program
            .materialize(&mut parallel, EvalOptions::default().with_threads(4))
            .unwrap();

        // Set-headed programs add exactly the distinct derived facts, so
        // the count is schedule-independent even though rule_evals and
        // iterations may not be.
        prop_assert_eq!(seq_stats.facts_added, par_stats.facts_added);
        prop_assert_eq!(par_stats.strata.len(), 2, "negation splits the program");
        let mut per_worker_total = 0usize;
        for s in &par_stats.strata {
            prop_assert!(s.workers >= 1 && s.workers <= 4);
            prop_assert_eq!(s.rule_evals_per_worker.len(), s.workers.max(1));
            per_worker_total += s.rule_evals_per_worker.iter().sum::<usize>();
        }
        prop_assert_eq!(
            per_worker_total, par_stats.rule_evals,
            "per-worker telemetry must account for every rule evaluation"
        );

        // Idempotence under parallelism: re-deriving adds nothing.
        let again = program
            .materialize(&mut parallel, EvalOptions::default().with_threads(4))
            .unwrap();
        prop_assert_eq!(again.facts_added, 0);
        prop_assert_eq!(sequential.universe(), parallel.universe());
    }
}

/// Satellite determinism check: the *same* parallel refresh, repeated,
/// produces byte-identical snapshots — thread interleavings never leak
/// into the persisted universe.
#[test]
fn parallel_refresh_snapshots_are_byte_identical() {
    let cfg = ShardedStockConfig::sized(8, 4, 10);
    let rules = sharded_union_rules(&cfg);
    let mut reference: Option<String> = None;
    for run in 0..10 {
        let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
        let opts = engine.options().rebuild().threads(4).build();
        engine.set_options(opts);
        engine.add_rules(&rules).unwrap();
        engine.refresh_views().unwrap();
        let json = idl_storage::persist::to_json(engine.store()).unwrap();
        match &reference {
            None => reference = Some(json),
            Some(r) => assert_eq!(&json, r, "refresh {run} diverged from the first"),
        }
    }

    // and the on-disk snapshot writer emits exactly those bytes
    let path = std::env::temp_dir().join(format!("idl_par_det_{}.json", std::process::id()));
    let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
    let opts = engine.options().rebuild().threads(4).build();
    engine.set_options(opts);
    engine.add_rules(&rules).unwrap();
    engine.refresh_views().unwrap();
    engine.save_snapshot(&path).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(Some(on_disk.trim_end().to_string()), reference.map(|r| r.trim_end().to_string()));
}
