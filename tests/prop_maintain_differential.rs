//! Differential battery for write-path view maintenance (DESIGN.md
//! "Write-path view maintenance").
//!
//! Maintenance must not be a *semantic* knob: over hundreds of random
//! insert/retract schedules, an engine that absorbs every update through
//! the incremental maintenance pass (with the stale-refresh delta-repair
//! backstop for the shapes it bails on) must land on **byte-identical**
//! universe snapshots to the refresh-the-world reference mode
//! (`maintain(false)` + a final full rebuild), across {1, 4} threads ×
//! {compiled, tree-walk}. Dedicated legs pin the schematic lifecycle: an
//! insert that materialises a brand-new derived relation (schematic
//! create) and a retraction that empties one again (schematic GC).

use idl::{Engine, EngineOptions};
use idl_repro as _;
use proptest::prelude::*;

/// Union view, a schematic (data-dependent head) view deriving one
/// relation per stock, and a negation view over a second schema — the
/// three maintenance shapes: (Δ ⋈ full) inserts, DRed retraction
/// cascades, and schematic create/GC.
const RULES: &str = "
    .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbO.S(.date=D,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
    .dbI.lone(.stk=S) <- .dbI.p(.stk=S), .chwab.r¬(.S>0) ;
";

const DATES: &[&str] = &["3/3/85", "3/4/85", "9/9/99"];
const STOCKS: &[&str] = &["hp", "ibm", "sun", "dec"];

/// Queries run against both final stores: selection, higher-order
/// enumeration over the schematic relations, and the negation view.
const BATTERY: &[&str] =
    &["?.dbI.p(.stk=S, .clsPrice=P)", "?.dbO.R(.date=D, .clsPrice=P)", "?.dbI.lone(.stk=S)"];

fn base_engine() -> Engine {
    Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/3/85", "ibm", 160.0),
        ("3/4/85", "hp", 62.0),
    ])
}

/// One random update statement. Retractions may miss (no-op updates) and
/// inserts may collide with existing rows (set semantics) — both are
/// deliberate: the pass must treat empty deltas as freshness-preserving.
fn op_strategy() -> impl Strategy<Value = String> {
    (0usize..4, 0usize..DATES.len(), 0usize..STOCKS.len(), 1i64..50).prop_map(|(kind, d, s, p)| {
        let (date, stk) = (DATES[d], STOCKS[s]);
        match kind {
            0 => format!("?.euter.r+(.date={date}, .stkCode={stk}, .clsPrice={p})"),
            1 => format!("?.euter.r-(.date={date}, .stkCode={stk})"),
            2 => format!("?.chwab.r+(.date={date}, .{stk}={p})"),
            _ => format!("?.chwab.r-(.date={date})"),
        }
    })
}

fn universe_json(e: &Engine) -> String {
    idl_storage::persist::to_json(e.store()).unwrap()
}

/// Applies the schedule update-by-update with maintenance on, then asks
/// for freshness the way a published snapshot would (any update the pass
/// bailed on is repaired here). Returns the engine for inspection.
fn maintained_run(schedule: &[String], threads: usize, compile: bool) -> Engine {
    let mut e = base_engine();
    e.set_options(
        EngineOptions::builder().threads(threads).compile(compile).maintain(true).build(),
    );
    e.add_rules(RULES).unwrap();
    e.refresh_views().unwrap();
    for stmt in schedule {
        e.update(stmt).unwrap_or_else(|err| panic!("{stmt}: {err}"));
    }
    e.refresh_views_if_stale().unwrap();
    assert!(e.views_fresh_now());
    e
}

/// The refresh-the-world reference: same schedule with maintenance off,
/// then one full rebuild.
fn reference_run(schedule: &[String]) -> Engine {
    let mut e = base_engine();
    e.set_options(EngineOptions::builder().maintain(false).auto_refresh(false).build());
    e.add_rules(RULES).unwrap();
    for stmt in schedule {
        e.update(stmt).unwrap_or_else(|err| panic!("{stmt}: {err}"));
    }
    e.refresh_views().unwrap();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cross-mode leg: maintained ≡ rebuilt over {1, 4} threads ×
    /// {compiled, tree-walk}, down to the bytes a snapshot would persist,
    /// plus identical battery answers.
    #[test]
    fn maintained_matches_rebuilt_across_modes(
        schedule in prop::collection::vec(op_strategy(), 1..12)
    ) {
        let mut reference = reference_run(&schedule);
        let expected = universe_json(&reference);
        for threads in [1usize, 4] {
            for compile in [true, false] {
                let mut maintained = maintained_run(&schedule, threads, compile);
                prop_assert_eq!(
                    &universe_json(&maintained),
                    &expected,
                    "maintained universe diverged from rebuilt at {} threads, compile={}\nschedule: {:?}",
                    threads,
                    compile,
                    &schedule
                );
                for src in BATTERY {
                    prop_assert_eq!(
                        reference.query(src).unwrap(),
                        maintained.query(src).unwrap(),
                        "answers diverged for {} at {} threads, compile={}",
                        src,
                        threads,
                        compile
                    );
                }
            }
        }
    }
}

/// Schematic-create leg: a quote for a brand-new stock must be absorbed
/// by the maintenance pass itself (no refresh fallback), materialising
/// the new `dbO` relation incrementally.
#[test]
fn schematic_create_is_maintained_incrementally() {
    for threads in [1usize, 4] {
        for compile in [true, false] {
            let schedule = vec!["?.euter.r+(.date=9/9/99, .stkCode=sun, .clsPrice=7)".into()];
            let mut e = maintained_run(&schedule, threads, compile);
            assert_eq!(e.maintenance_runs(), 1, "create must not fall back to refresh");
            let m = e.last_fixpoint_stats().maintenance.clone();
            assert_eq!(m.schematic_creates, 1, "{m:?}");
            assert!(e.query("?.dbO.sun(.clsPrice=7)").unwrap().is_true());
            assert_eq!(universe_json(&e), universe_json(&reference_run(&schedule)));
        }
    }
}

/// Schematic-GC leg: retracting the only quote of a stock must empty and
/// garbage-collect its derived relation through the maintenance pass.
#[test]
fn schematic_gc_is_maintained_incrementally() {
    for threads in [1usize, 4] {
        for compile in [true, false] {
            let schedule = vec![
                "?.euter.r+(.date=9/9/99, .stkCode=sun, .clsPrice=7)".into(),
                "?.euter.r-(.date=9/9/99, .stkCode=sun, .clsPrice=7)".into(),
            ];
            let mut e = maintained_run(&schedule, threads, compile);
            assert_eq!(e.maintenance_runs(), 2, "GC must not fall back to refresh");
            let m = e.last_fixpoint_stats().maintenance.clone();
            assert_eq!(m.schematic_gcs, 1, "{m:?}");
            assert!(!e.query("?.dbO.R(.clsPrice=7), R = sun").unwrap().is_true());
            assert_eq!(universe_json(&e), universe_json(&reference_run(&schedule)));
        }
    }
}
