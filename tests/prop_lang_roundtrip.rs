//! Property: the pretty-printer and the parser are inverse on every AST
//! the parser can produce — `parse(print(x)) == x`.
//!
//! The strategies below generate exactly the parser-producible shapes
//! (e.g. a field's sub-expression is never a multi-field tuple — surface
//! syntax spells that `(.a…, .b…)`, which is a *set* expression).

use idl_lang::{
    parse_statement, AttrTerm, Expr, Field, RelOp, Request, Sign, Statement, Term, Var,
};
use idl_object::Value;
use idl_repro as _;
use proptest::prelude::*;

fn atom_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-99i64..99).prop_map(Value::int),
        (-999i64..999).prop_map(|i| Value::float(i as f64 / 4.0)),
        prop::sample::select(vec!["hp", "ibm", "cat", "r2d2"]).prop_map(Value::str),
        prop::sample::select(vec!["Hello World", "null", "TRUE-ish", ""]).prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
        (1i64..28, 1i64..13).prop_map(|(d, m)| {
            Value::date(idl_object::Date::new(1985, m as u8, d as u8).unwrap())
        }),
    ]
}

fn var_name() -> impl Strategy<Value = Var> {
    prop::sample::select(vec!["X", "Y", "S", "P", "D2"]).prop_map(Var::new)
}

fn term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![atom_value().prop_map(Term::Const), var_name().prop_map(Term::Var)];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (
            prop::sample::select(vec![
                idl_lang::ArithOp::Add,
                idl_lang::ArithOp::Sub,
                idl_lang::ArithOp::Mul,
                idl_lang::ArithOp::Div,
            ]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Term::Arith(op, Box::new(a), Box::new(b)))
    })
}

fn relop() -> impl Strategy<Value = RelOp> {
    prop::sample::select(vec![RelOp::Lt, RelOp::Le, RelOp::Eq, RelOp::Ne, RelOp::Gt, RelOp::Ge])
}

fn attr_term() -> impl Strategy<Value = AttrTerm> {
    prop_oneof![
        prop::sample::select(vec!["a", "b", "cc", "date"]).prop_map(AttrTerm::c),
        var_name().prop_map(AttrTerm::Var),
    ]
}

/// Expressions that may appear after an attribute (the parser's `suffix`).
fn suffix_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            Just(Expr::Epsilon),
            (relop(), term()).prop_map(|(op, t)| Expr::Atomic(op, t)),
            (prop::sample::select(vec![Sign::Plus, Sign::Minus]), term())
                .prop_map(|(s, t)| Expr::AtomicUpdate(s, t)),
        ]
        .boxed()
    } else {
        prop_oneof![
            suffix_expr(0),
            // path chaining: .a.b…
            field(depth - 1).prop_map(|f| Expr::Tuple(vec![f])),
            // (conjunct)
            conjunct(depth - 1).prop_map(|e| Expr::Set(Box::new(e))),
            // ±(conjunct)
            (prop::sample::select(vec![Sign::Plus, Sign::Minus]), conjunct(depth - 1))
                .prop_map(|(s, e)| Expr::SetUpdate(s, Box::new(e))),
            // ¬suffix
            suffix_expr(depth - 1).prop_map(|e| Expr::Not(Box::new(e))),
        ]
        .boxed()
    }
}

fn field(depth: u32) -> BoxedStrategy<Field> {
    (
        prop::option::of(prop::sample::select(vec![Sign::Plus, Sign::Minus])),
        attr_term(),
        suffix_expr(depth),
    )
        .prop_map(|(sign, attr, expr)| Field { sign, attr, expr })
        .boxed()
}

/// What parentheses may contain: one non-field expression or 1–3 fields.
fn conjunct(depth: u32) -> BoxedStrategy<Expr> {
    prop_oneof![
        (relop(), term()).prop_map(|(op, t)| Expr::Atomic(op, t)),
        prop::collection::vec(field(depth), 1..=3).prop_map(Expr::Tuple),
        Just(Expr::Epsilon),
    ]
    .boxed()
}

/// A top-level request item.
fn item() -> BoxedStrategy<Expr> {
    prop_oneof![
        // the ubiquitous `.db.rel…` shape
        field(2).prop_map(|f| Expr::Tuple(vec![f])),
        // constraints like `X = ource`
        (term(), relop(), term())
            .prop_filter_map("constraint lhs must not start a field", |(a, op, b)| Some(
                Expr::Constraint(a, op, b)
            ),),
        // negated items
        field(1).prop_map(|f| Expr::Not(Box::new(Expr::Tuple(vec![f])))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(items in prop::collection::vec(item(), 1..=3)) {
        let stmt = Statement::Request(Request::new(items));
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse\n  printed: {printed}\n  error: {e}"));
        prop_assert_eq!(
            &stmt, &reparsed,
            "round-trip mismatch\n  printed: {}", printed
        );
    }

    #[test]
    fn printed_terms_reparse(t in term()) {
        // terms round-trip through the constraint position
        let stmt = Statement::Request(Request::new(vec![Expr::Constraint(
            Term::v("X"),
            RelOp::Eq,
            t,
        )]));
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("{printed}: {e}"));
        prop_assert_eq!(stmt, reparsed, "printed: {}", printed);
    }
}
