//! Crash-point simulation battery (DESIGN.md "Crash safety and the
//! simulated VFS").
//!
//! A scripted workload — base inserts across the three stock schemata,
//! §7.1 multidatabase update programs, §7.2 view updates, checkpoints —
//! runs on a [`SimVfs`] with a scheduled power failure. After the crash
//! the file system is power-cycled (losing unsynced writes and applying
//! seeded torn tails) and a fresh [`DurableEngine`] recovers. The
//! invariants, under the default always-fsync policy:
//!
//! * recovery never fails;
//! * the recovered universe equals the reference built from exactly the
//!   **acknowledged** updates — optionally plus the single in-flight
//!   update whose record happened to become fully durable before the
//!   crash, but never a torn fragment of it (atomic presence or absence);
//! * the recovered engine keeps working, and its checkpointed universe
//!   reopens **byte-identically**.
//!
//! With dropped fsyncs (a lying disk) the guarantee weakens to prefix
//! consistency: the recovered state is some prefix of the executed
//! update sequence, or recovery reports an error — never silent garbage.
//!
//! Every fault schedule is reproducible: the [`FaultPlan`] serialises
//! into each failure message, and `IDL_SIM_FAULTS=<that string>` on the
//! `idl --durable` CLI replays it by hand. `IDL_CRASH_SEED` perturbs all
//! seeds in this file (CI pins it).

use idl::{
    Backend, DurabilityOptions, DurableEngine, Engine, EngineError, FaultPlan, SimVfs,
    SnapshotCodec, StorageSpec, Vfs,
};
use idl_repro as _;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One step of the scripted workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    /// A durable request (acknowledged only after its log record syncs).
    Update(&'static str),
    /// Snapshot + log rotation.
    Checkpoint,
}

/// The scripted workload: schematically-discrepant inserts (row-wise
/// `euter`, attribute-per-stock `chwab`, relation-per-stock `ource`),
/// §7.1 program calls, §7.2 view updates, and mid-stream checkpoints.
const WORKLOAD: &[Step] = &[
    Step::Update("?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=50)"),
    Step::Update("?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=62)"),
    Step::Update("?.euter.r+(.date=3/3/85, .stkCode=ibm, .clsPrice=160)"),
    Step::Update("?.chwab.r+(.date=3/5/85, .hp=61)"),
    Step::Update("?.ource.ibm+(.date=3/5/85, .clsPrice=210)"),
    Step::Checkpoint,
    Step::Update("?.dbU.insStk(.stk=sun, .date=3/6/85, .price=30)"),
    Step::Update("?.dbE.r+(.date=3/7/85, .stkCode=newco, .clsPrice=9)"),
    Step::Update("?.dbU.delStk(.stk=hp, .date=3/3/85)"),
    Step::Update("?.dbU.rmStk(.stk=ibm)"),
    Step::Checkpoint,
    Step::Update("?.euter.r+(.date=3/8/85, .stkCode=hp, .clsPrice=64)"),
    Step::Update("?.dbE.r-(.date=3/7/85, .stkCode=newco)"),
    Step::Update("?.dbU.insStk(.stk=acme, .date=3/8/85, .price=12)"),
];

/// A post-recovery probe update (continuing work after a crash).
const EXTRA_UPDATE: &str = "?.euter.r+(.date=3/9/85, .stkCode=zz, .clsPrice=1)";

/// `IDL_CRASH_SEED` mixes into every seed in this file (CI pins it; a
/// failure message's plan already embeds the mixed seed, so repro needs
/// only the plan string).
fn base_seed() -> u64 {
    std::env::var("IDL_CRASH_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn open(vfs: &Arc<SimVfs>, threads: usize, compile: bool) -> Result<DurableEngine, EngineError> {
    open_opts(vfs, DurabilityOptions::default(), threads, compile)
}

fn open_opts(
    vfs: &Arc<SimVfs>,
    opts: DurabilityOptions,
    threads: usize,
    compile: bool,
) -> Result<DurableEngine, EngineError> {
    let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    DurableEngine::open_with_vfs("/crash", v, opts, move |e| {
        idl::transparency::install_two_level_mapping(e)?;
        let o = e.options().rebuild().threads(threads).compile(compile).build();
        e.set_options(o);
        Ok(())
    })
}

/// Default options with the storage backend pinned to mem: the
/// delta-chain and snapshot-migration legs assert mem-only artifacts
/// (base snapshot + delta files), so they must not inherit an
/// `IDL_STORAGE=paged` matrix default. The paged backend has its own
/// every-fault-site leg below.
fn mem_default() -> DurabilityOptions {
    DurabilityOptions { storage: StorageSpec::Mem, ..DurabilityOptions::default() }
}

/// What a (possibly crashing) workload run acknowledged.
#[derive(Clone, PartialEq, Eq, Debug)]
struct RunOutcome {
    /// Workload indices of updates acknowledged (logged + synced) in order.
    acked: Vec<usize>,
    /// The update that errored mid-durability, if the failing step was an
    /// update: its record may or may not have become durable, atomically.
    in_flight: Option<usize>,
    /// Whether the whole workload ran without a fault.
    completed: bool,
}

fn run_workload(vfs: &Arc<SimVfs>, threads: usize, compile: bool) -> RunOutcome {
    let mut d = match open(vfs, threads, compile) {
        Ok(d) => d,
        Err(_) => return RunOutcome { acked: Vec::new(), in_flight: None, completed: false },
    };
    let mut acked = Vec::new();
    for (i, step) in WORKLOAD.iter().enumerate() {
        let res = match step {
            Step::Update(src) => d.update(src).map(|_| ()),
            Step::Checkpoint => d.checkpoint().map(|_| ()),
        };
        match res {
            Ok(()) => {
                if matches!(step, Step::Update(_)) {
                    acked.push(i);
                }
            }
            Err(_) => {
                let in_flight = matches!(step, Step::Update(_)).then_some(i);
                return RunOutcome { acked, in_flight, completed: false };
            }
        }
    }
    RunOutcome { acked, in_flight: None, completed: true }
}

/// Reference universe JSON after applying exactly the given workload
/// updates in order on a plain in-memory engine (memoized — prefixes
/// repeat heavily across crash points).
fn reference_json(indices: &[usize]) -> String {
    static MEMO: OnceLock<Mutex<BTreeMap<Vec<usize>, String>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(hit) = memo.lock().unwrap().get(indices) {
        return hit.clone();
    }
    let mut e = Engine::new();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    for &i in indices {
        let Step::Update(src) = WORKLOAD[i] else { continue };
        e.update(src).unwrap();
    }
    e.refresh_views().unwrap();
    let json = e.universe_json().unwrap();
    memo.lock().unwrap().insert(indices.to_vec(), json.clone());
    json
}

/// The crash-battery postcondition: exact acked-set recovery (modulo the
/// atomic in-flight record), continued operation, and byte-identical
/// checkpoint round-trip.
fn assert_recovery(
    vfs: &Arc<SimVfs>,
    run: &RunOutcome,
    threads: usize,
    compile: bool,
    plan: &FaultPlan,
) {
    assert_recovery_with(vfs, run, plan, |v| open(v, threads, compile));
}

/// [`assert_recovery`] parameterised on how to (re)open the directory —
/// the paged legs recover through the paged storage backend.
fn assert_recovery_with(
    vfs: &Arc<SimVfs>,
    run: &RunOutcome,
    plan: &FaultPlan,
    opener: impl Fn(&Arc<SimVfs>) -> Result<DurableEngine, EngineError>,
) {
    let mut d = opener(vfs).unwrap_or_else(|e| panic!("recovery must not fail (plan {plan}): {e}"));
    d.refresh_views().unwrap_or_else(|e| panic!("refresh after recovery (plan {plan}): {e}"));
    let got = d.universe_json().unwrap();
    let acked_only = reference_json(&run.acked);
    let matches_acked = got == acked_only;
    let matches_with_in_flight = !matches_acked
        && run.in_flight.is_some_and(|x| {
            let mut with = run.acked.clone();
            with.push(x);
            got == reference_json(&with)
        });
    assert!(
        matches_acked || matches_with_in_flight,
        "plan {plan}: recovered universe is neither the acked set {:?} nor acked + in-flight {:?}",
        run.acked,
        run.in_flight,
    );

    // the recovered engine continues accepting durable work ...
    d.update(EXTRA_UPDATE).unwrap_or_else(|e| panic!("update after recovery (plan {plan}): {e}"));
    d.checkpoint().unwrap_or_else(|e| panic!("checkpoint after recovery (plan {plan}): {e}"));
    d.refresh_views().unwrap();
    let want = d.universe_json().unwrap();
    drop(d);
    // ... and the checkpointed universe reopens byte-identically
    let mut d2 =
        opener(vfs).unwrap_or_else(|e| panic!("reopen after checkpoint (plan {plan}): {e}"));
    d2.refresh_views().unwrap();
    assert_eq!(
        d2.universe_json().unwrap(),
        want,
        "plan {plan}: snapshot round-trip is not byte-identical"
    );
}

/// Ops one fault-free workload takes — the crash-site enumeration range.
fn workload_op_count() -> u64 {
    static N: OnceLock<u64> = OnceLock::new();
    *N.get_or_init(|| {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(1)));
        let run = run_workload(&probe, 1, true);
        assert!(run.completed, "fault-free workload must complete");
        probe.op_count()
    })
}

/// Exhaustive enumeration: crash at *every* I/O op of the workload.
fn crash_at_every_fault_site(threads: usize, compile: bool) {
    let seed = 0xC0FFEE ^ base_seed();
    let total = workload_op_count();
    assert!(total >= 20, "workload exercises too few fault sites: {total}");
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload(&vfs, threads, compile);
        vfs.power_cycle();
        assert_recovery(&vfs, &run, threads, compile, &plan);
    }
}

#[test]
fn crash_at_every_fault_site_compiled() {
    for threads in [1, 4] {
        crash_at_every_fault_site(threads, true);
    }
}

/// A query that repairs stale views incrementally (via auto-refresh) but
/// leaves maintained-fresh views untouched — unlike `refresh_views`,
/// which would rebuild from scratch and mask corrupt maintained state.
const PROBE_QUERY: &str = "?.dbI.p(.stk=S, .date=D, .clsPrice=P)";

/// Like [`run_workload`], but views are materialised up front so every
/// subsequent update is absorbed by write-path maintenance and every
/// checkpoint persists the maintained state alongside the universe.
/// The refresh call does no VFS I/O, so crash sites line up with
/// [`workload_op_count`].
fn run_workload_maintained(vfs: &Arc<SimVfs>, threads: usize) -> RunOutcome {
    let mut d = match open(vfs, threads, true) {
        Ok(d) => d,
        Err(_) => return RunOutcome { acked: Vec::new(), in_flight: None, completed: false },
    };
    d.refresh_views().expect("in-memory view build cannot hit the VFS");
    let mut acked = Vec::new();
    for (i, step) in WORKLOAD.iter().enumerate() {
        let res = match step {
            Step::Update(src) => d.update(src).map(|_| ()),
            Step::Checkpoint => d.checkpoint().map(|_| ()),
        };
        match res {
            Ok(()) => {
                if matches!(step, Step::Update(_)) {
                    acked.push(i);
                }
            }
            Err(_) => {
                let in_flight = matches!(step, Step::Update(_)).then_some(i);
                return RunOutcome { acked, in_flight, completed: false };
            }
        }
    }
    RunOutcome { acked, in_flight: None, completed: true }
}

/// Crash at every I/O op of a maintenance-heavy run, then recover
/// *without* a forced rebuild: the recovered engine's views — adopted
/// from the snapshot's maintenance state and advanced by maintained
/// replay, with at most an incremental repair from the probe query —
/// must equal the full-rebuild reference byte-for-byte.
fn crash_at_every_fault_site_maintained(threads: usize) {
    let seed = 0xABBA ^ base_seed();
    let total = workload_op_count();
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload_maintained(&vfs, threads);
        vfs.power_cycle();

        let mut d = open(&vfs, threads, true)
            .unwrap_or_else(|e| panic!("recovery must not fail (plan {plan}): {e}"));
        d.query(PROBE_QUERY)
            .unwrap_or_else(|e| panic!("probe query after recovery (plan {plan}): {e}"));
        let got = d.universe_json().unwrap();
        let matches_acked = got == reference_json(&run.acked);
        let matches_with_in_flight = !matches_acked
            && run.in_flight.is_some_and(|x| {
                let mut with = run.acked.clone();
                with.push(x);
                got == reference_json(&with)
            });
        assert!(
            matches_acked || matches_with_in_flight,
            "plan {plan}: maintained recovery is neither the acked set {:?} nor acked + in-flight {:?}",
            run.acked,
            run.in_flight,
        );

        // keep working through the maintained write path, checkpoint the
        // maintained state, and reopen byte-identically — still with no
        // full rebuild anywhere
        d.update(EXTRA_UPDATE)
            .unwrap_or_else(|e| panic!("update after recovery (plan {plan}): {e}"));
        d.checkpoint().unwrap_or_else(|e| panic!("checkpoint after recovery (plan {plan}): {e}"));
        d.query(PROBE_QUERY).unwrap();
        let want = d.universe_json().unwrap();
        drop(d);
        let mut d2 = open(&vfs, threads, true)
            .unwrap_or_else(|e| panic!("reopen after checkpoint (plan {plan}): {e}"));
        d2.query(PROBE_QUERY).unwrap();
        assert_eq!(
            d2.universe_json().unwrap(),
            want,
            "plan {plan}: maintained snapshot round-trip is not byte-identical"
        );
    }
}

#[test]
fn crash_at_every_fault_site_maintained_views() {
    for threads in [1, 4] {
        crash_at_every_fault_site_maintained(threads);
    }
}

#[test]
fn crash_at_every_fault_site_tree_walk() {
    for threads in [1, 4] {
        crash_at_every_fault_site(threads, false);
    }
}

/// The group-commit workload: three coalesced batches, as the event-loop
/// server's write thread would issue them. Each batch is one log append
/// plus one fsync acknowledging every member.
const GROUPS: &[&[&str]] = &[
    &[
        "?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=50)",
        "?.euter.r+(.date=3/4/85, .stkCode=hp, .clsPrice=62)",
        "?.euter.r+(.date=3/3/85, .stkCode=ibm, .clsPrice=160)",
        "?.chwab.r+(.date=3/5/85, .hp=61)",
    ],
    &[
        "?.ource.ibm+(.date=3/5/85, .clsPrice=210)",
        "?.dbU.insStk(.stk=sun, .date=3/6/85, .price=30)",
        "?.dbE.r+(.date=3/7/85, .stkCode=newco, .clsPrice=9)",
        "?.dbU.delStk(.stk=hp, .date=3/3/85)",
        "?.dbU.rmStk(.stk=ibm)",
    ],
    &[
        "?.euter.r+(.date=3/8/85, .stkCode=hp, .clsPrice=64)",
        "?.dbE.r-(.date=3/7/85, .stkCode=newco)",
        "?.dbU.insStk(.stk=acme, .date=3/8/85, .price=12)",
    ],
];

/// Reference universe for an explicit update list (group prefixes don't
/// line up with [`WORKLOAD`] indices, so [`reference_json`] can't serve).
fn group_reference(srcs: &[&str]) -> String {
    let mut e = Engine::new();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    for src in srcs {
        e.update(src).unwrap();
    }
    e.refresh_views().unwrap();
    e.universe_json().unwrap()
}

/// Runs the batched workload; returns the fully-acknowledged group count
/// and whether a further group was in flight when a fault struck.
fn run_grouped(vfs: &Arc<SimVfs>) -> (usize, bool) {
    let mut d = match open(vfs, 1, true) {
        Ok(d) => d,
        Err(_) => return (0, false),
    };
    for (g, members) in GROUPS.iter().enumerate() {
        let srcs: Vec<String> = members.iter().map(|s| s.to_string()).collect();
        let results = d.update_group(&srcs);
        if results.iter().any(|r| r.is_err()) {
            return (g, true);
        }
    }
    (GROUPS.len(), false)
}

/// Power-cycle at every VFS op index across the group-commit windows:
/// an acknowledged batch (its single fsync completed) must recover in
/// full — all-or-prefix never truncates inside an acked group — while a
/// batch cut mid-commit may surface as any *prefix* of its members
/// (records land sequentially in the coalesced append; torn-tail repair
/// drops the rest), never a gap or a torn record.
#[test]
fn group_commit_crash_battery_acks_all_or_prefix() {
    let seed = 0xBEEF ^ base_seed();
    let total = {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let (acked, faulted) = run_grouped(&probe);
        assert_eq!((acked, faulted), (GROUPS.len(), false), "fault-free run must complete");
        probe.op_count()
    };
    let mut strict_prefixes = 0usize;
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let (acked, in_flight) = run_grouped(&vfs);
        vfs.power_cycle();

        let mut d = open(&vfs, 1, true)
            .unwrap_or_else(|e| panic!("recovery must not fail (plan {plan}): {e}"));
        d.refresh_views().unwrap();
        let got = d.universe_json().unwrap();

        let acked_members: Vec<&str> =
            GROUPS[..acked].iter().flat_map(|g| g.iter().copied()).collect();
        let tail: &[&str] = if in_flight && acked < GROUPS.len() { GROUPS[acked] } else { &[] };
        let matched = (0..=tail.len()).find(|&k| {
            let mut candidate = acked_members.clone();
            candidate.extend_from_slice(&tail[..k]);
            got == group_reference(&candidate)
        });
        let Some(k) = matched else {
            panic!(
                "plan {plan}: recovered universe is neither the {acked} acked groups \
                 nor those plus any prefix of the in-flight group"
            );
        };
        if k > 0 && k < tail.len() {
            strict_prefixes += 1;
        }
    }
    // With the default seed, some crash site must land inside a
    // coalesced append and recover a strict non-empty prefix of the
    // group — otherwise this battery never exercised the boundary.
    if base_seed() == 0 {
        assert!(
            strict_prefixes > 0,
            "no crash site recovered a strict prefix of an in-flight group \
             ({total} sites probed)"
        );
    }
}

/// Like [`open`], but with an explicit snapshot codec (bypassing the
/// `IDL_CODEC` environment default — the migration leg needs to script
/// a JSON era followed by a binary era regardless of the CI matrix).
fn open_codec(vfs: &Arc<SimVfs>, codec: SnapshotCodec) -> Result<DurableEngine, EngineError> {
    let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let opts = DurabilityOptions { codec, ..mem_default() };
    DurableEngine::open_with_vfs("/crash", v, opts, |e| {
        idl::transparency::install_two_level_mapping(e)
    })
}

/// The chained workload: a checkpoint after *every* update, so the
/// directory grows a base snapshot plus a delta chain (compacted when it
/// hits the policy cap) — crash sites land between, inside, and after
/// chain members.
fn run_workload_chained(vfs: &Arc<SimVfs>) -> RunOutcome {
    let mut d = match open_opts(vfs, mem_default(), 1, true) {
        Ok(d) => d,
        Err(_) => return RunOutcome { acked: Vec::new(), in_flight: None, completed: false },
    };
    let mut acked = Vec::new();
    for (i, step) in WORKLOAD.iter().enumerate() {
        // the scripted Checkpoint steps are redundant here
        let Step::Update(src) = step else { continue };
        match d.update(src) {
            Ok(_) => acked.push(i),
            Err(_) => return RunOutcome { acked, in_flight: Some(i), completed: false },
        }
        if d.checkpoint().is_err() {
            return RunOutcome { acked, in_flight: None, completed: false };
        }
    }
    RunOutcome { acked, in_flight: None, completed: true }
}

/// Power-cycle at every I/O op of the chained workload: recovery replays
/// base + delta chain + log tail and must land on exactly the acked set,
/// whatever chain prefix survived the crash.
#[test]
fn crash_mid_delta_chain_recovers_exactly() {
    let seed = 0xDE17A ^ base_seed();
    let total = {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let run = run_workload_chained(&probe);
        assert!(run.completed, "fault-free chained workload must complete");
        probe.op_count()
    };
    // the leg is vacuous unless the fault-free run really grew a chain
    {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let _ = run_workload_chained(&probe);
        let d = open_opts(&probe, mem_default(), 1, true).unwrap();
        let stats = d.durability_stats();
        if stats.codec == SnapshotCodec::Binary {
            assert!(stats.chain_len > 0, "chained workload left no delta chain to recover");
        }
    }
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload_chained(&vfs);
        vfs.power_cycle();
        assert_recovery_with(&vfs, &run, &plan, |v| open_opts(v, mem_default(), 1, true));
    }
}

/// Buffer pool for the paged crash legs: small enough that the
/// workload's page file outgrows it, so commits and recovery evict and
/// write back dirty frames under pressure.
const PAGED_POOL: usize = 4;

/// Like [`open`], but on the paged storage backend with the tiny
/// eviction-forcing pool.
fn open_paged(vfs: &Arc<SimVfs>) -> Result<DurableEngine, EngineError> {
    let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let opts = DurabilityOptions {
        storage: StorageSpec::Paged { pool_pages: PAGED_POOL },
        ..DurabilityOptions::default()
    };
    DurableEngine::open_with_vfs("/crash", v, opts, |e| {
        idl::transparency::install_two_level_mapping(e)
    })
}

/// The paged workload: a checkpoint after every update, so most VFS ops
/// are shadow-page writes, dirty write-backs and meta flips against the
/// page file — crash sites land *inside* the page-file commit protocol.
fn run_workload_paged(vfs: &Arc<SimVfs>) -> RunOutcome {
    let mut d = match open_paged(vfs) {
        Ok(d) => d,
        Err(_) => return RunOutcome { acked: Vec::new(), in_flight: None, completed: false },
    };
    let mut acked = Vec::new();
    for (i, step) in WORKLOAD.iter().enumerate() {
        let Step::Update(src) = step else { continue };
        match d.update(src) {
            Ok(_) => acked.push(i),
            Err(_) => return RunOutcome { acked, in_flight: Some(i), completed: false },
        }
        if d.checkpoint().is_err() {
            return RunOutcome { acked, in_flight: None, completed: false };
        }
    }
    RunOutcome { acked, in_flight: None, completed: true }
}

/// Power-cycle at every I/O op of the paged workload — including every
/// page write, write-back and meta flip of `pages.idb` — then recover
/// through the paged backend. The shadow-paging commit protocol must
/// make every crash land on the previous or the new epoch, never
/// between: recovery lands on exactly the acked set, keeps accepting
/// work, and its next checkpoint reopens byte-identically.
#[test]
fn paged_crash_at_every_fault_site() {
    let seed = 0x9A6ED ^ base_seed();
    let total = {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let run = run_workload_paged(&probe);
        assert!(run.completed, "fault-free paged workload must complete");
        let total = probe.op_count();
        // the leg is vacuous unless the page file really outgrew the
        // pool and commits evicted under pressure
        let d = open_paged(&probe).unwrap();
        let stats = d.durability_stats();
        assert!(
            stats.storage_pages > PAGED_POOL as u64,
            "page file ({} pages) must exceed the pool ({PAGED_POOL} pages)",
            stats.storage_pages
        );
        let pool = stats.pool.expect("paged backend reports pool stats");
        assert!(pool.evictions > 0, "recovery under a {PAGED_POOL}-page pool must evict");
        total
    };
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload_paged(&vfs);
        vfs.power_cycle();
        assert_recovery_with(&vfs, &run, &plan, open_paged);
    }
}

/// Boundary between the eras in [`run_workload_migration`]: workload
/// steps before it run under the JSON codec, the rest under binary.
const MIGRATION_SPLIT: usize = 6;

/// Two-era workload: a JSON-codec engine runs the first half (including
/// a checkpoint, so a legacy JSON snapshot exists on disk), then a
/// binary-codec engine opens the same directory — migrating the base on
/// open — and runs the second half.
fn run_workload_migration(vfs: &Arc<SimVfs>) -> RunOutcome {
    let mut acked = Vec::new();
    {
        let mut d = match open_codec(vfs, SnapshotCodec::Json) {
            Ok(d) => d,
            Err(_) => return RunOutcome { acked, in_flight: None, completed: false },
        };
        for (i, step) in WORKLOAD.iter().enumerate().take(MIGRATION_SPLIT) {
            let res = match step {
                Step::Update(src) => d.update(src).map(|_| ()),
                Step::Checkpoint => d.checkpoint().map(|_| ()),
            };
            match res {
                Ok(()) => {
                    if matches!(step, Step::Update(_)) {
                        acked.push(i);
                    }
                }
                Err(_) => {
                    let in_flight = matches!(step, Step::Update(_)).then_some(i);
                    return RunOutcome { acked, in_flight, completed: false };
                }
            }
        }
    }
    let mut d = match open_codec(vfs, SnapshotCodec::Binary) {
        Ok(d) => d,
        Err(_) => return RunOutcome { acked, in_flight: None, completed: false },
    };
    for (i, step) in WORKLOAD.iter().enumerate().skip(MIGRATION_SPLIT) {
        let res = match step {
            Step::Update(src) => d.update(src).map(|_| ()),
            Step::Checkpoint => d.checkpoint().map(|_| ()),
        };
        match res {
            Ok(()) => {
                if matches!(step, Step::Update(_)) {
                    acked.push(i);
                }
            }
            Err(_) => {
                let in_flight = matches!(step, Step::Update(_)).then_some(i);
                return RunOutcome { acked, in_flight, completed: false };
            }
        }
    }
    RunOutcome { acked, in_flight: None, completed: true }
}

/// Power-cycle at every I/O op across a JSON era, the one-shot migration
/// to binary, and the binary era that follows. Recovery (with the
/// session-default options, whatever codec they select) must land on
/// exactly the acked set: the migration is atomic — the directory is
/// never half JSON, half binary in a way replay cannot read.
#[test]
fn legacy_json_migration_survives_crashes_at_every_site() {
    let seed = 0x1093 ^ base_seed();
    let total = {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let run = run_workload_migration(&probe);
        assert!(run.completed, "fault-free migration workload must complete");
        let total = probe.op_count();
        // the binary-era open really migrated a JSON base
        let d = open_codec(&probe, SnapshotCodec::Binary).unwrap();
        assert!(
            d.durability_stats().codec == SnapshotCodec::Binary,
            "binary era must write binary checkpoints"
        );
        total
    };
    for crash_at in 1..=total {
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload_migration(&vfs);
        vfs.power_cycle();
        // recovery reopens through the migration target (the binary era)
        assert_recovery_with(&vfs, &run, &plan, |v| open_codec(v, SnapshotCodec::Binary));
    }
}

/// The migration itself is observable and one-shot: opening a JSON-era
/// directory with the binary codec reports `migrated_snapshot` once,
/// rewrites the base, and the next open is a plain binary open.
#[test]
fn legacy_json_migration_is_one_shot() {
    let vfs = Arc::new(SimVfs::new(FaultPlan::none(7 ^ base_seed())));
    {
        let mut d = open_codec(&vfs, SnapshotCodec::Json).unwrap();
        let Step::Update(src) = WORKLOAD[0] else { unreachable!() };
        d.update(src).unwrap();
        d.checkpoint().unwrap();
    }
    let first = open_codec(&vfs, SnapshotCodec::Binary).unwrap();
    assert!(first.durability_stats().migrated_snapshot, "first binary open must migrate");
    let want = first.universe_json().unwrap();
    drop(first);
    let second = open_codec(&vfs, SnapshotCodec::Binary).unwrap();
    assert!(!second.durability_stats().migrated_snapshot, "migration must not repeat");
    assert_eq!(second.universe_json().unwrap(), want);
}

#[test]
fn same_plan_replays_identically() {
    // Determinism self-check: one plan, two runs — identical ack
    // sequence and identical post-crash file-system image.
    let plan = FaultPlan::none(42 ^ base_seed()).with_crash_at(25);
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let vfs = Arc::new(SimVfs::new(plan));
            let run = run_workload(&vfs, 4, true);
            vfs.power_cycle();
            (run, vfs.dump())
        })
        .collect();
    assert_eq!(runs[0], runs[1], "plan {plan} must replay identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn seeded_crash_schedules_recover_exactly(
        seed in 0u64..1_000_000,
        cut in 0u64..1_000_000,
    ) {
        let seed = seed ^ base_seed();
        let threads = if seed & 1 == 0 { 1 } else { 4 };
        let compile = seed & 2 == 0;
        let crash_at = 1 + cut % workload_op_count();
        let plan = FaultPlan::none(seed).with_crash_at(crash_at);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload(&vfs, threads, compile);
        vfs.power_cycle();
        assert_recovery(&vfs, &run, threads, compile, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dropped_fsync_schedules_stay_prefix_consistent(
        seed in 0u64..1_000_000,
        cut in 0u64..1_000_000,
        one_in in 1u64..4,
    ) {
        // A lying disk: fsyncs silently dropped with probability 1/one_in,
        // plus a power failure. Acked updates may legitimately be lost;
        // the recovered state must still be an exact *prefix* of the
        // executed update sequence — or recovery must report an error.
        // Never silent garbage, never a non-prefix subset.
        let seed = seed ^ base_seed();
        let threads = if seed & 1 == 0 { 1 } else { 4 };
        let compile = seed & 2 == 0;
        let crash_at = 1 + cut % workload_op_count();
        let plan = FaultPlan::none(seed)
            .with_crash_at(crash_at)
            .with_drop_fsync_one_in(one_in);
        let vfs = Arc::new(SimVfs::new(plan));
        let run = run_workload(&vfs, threads, compile);
        vfs.power_cycle();

        let mut executed = run.acked.clone();
        executed.extend(run.in_flight);
        match open(&vfs, threads, compile) {
            Err(_) => {} // reported (a torn unsynced snapshot, say) — not silent
            Ok(mut d) => {
                d.refresh_views().unwrap();
                let got = d.universe_json().unwrap();
                let consistent = (0..=executed.len())
                    .any(|k| got == reference_json(&executed[..k]));
                prop_assert!(
                    consistent,
                    "plan {}: recovered state is not a prefix of the executed updates {:?}",
                    plan,
                    executed
                );
            }
        }
    }
}
