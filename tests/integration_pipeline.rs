//! Cross-crate integration: parse → evaluate → store → persist, driven
//! through the public `idl::Engine` API the way an embedding application
//! would use it.

use idl::{Engine, EngineError, Value};
use idl_repro as _;
use idl_workload::stock::{generate, StockConfig};

#[test]
fn full_script_lifecycle() {
    // One source text carrying data loading, view definitions, programs,
    // and queries — executed in order.
    let mut e = Engine::new();
    let outcomes = e
        .execute(
            "
            % load a little base data
            ?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50) ;
            ?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=62) ;
            ?.euter.r+(.date=3/3/85,.stkCode=ibm,.clsPrice=160) ;

            % a view and a program
            .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
            .dbU.del(.stk=S) -> .euter.r-(.stkCode=S) ;

            % use both
            ?.dbI.p(.stk=S, .clsPrice>100) ;
            ?.dbU.del(.stk=ibm) ;
            ?.dbI.p(.stk=S, .clsPrice>100) ;
            ",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 8);
    assert_eq!(
        outcomes[5].answers().unwrap().column("S"),
        vec![Value::str("ibm")],
        "view sees the loaded data"
    );
    assert!(
        outcomes[7].answers().unwrap().is_empty(),
        "after del(ibm) the view reflects the change"
    );
}

#[test]
fn snapshot_persistence_with_views_reinstalled() {
    let dir = std::env::temp_dir().join("idl-integration-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("universe.json");

    let mut e = Engine::from_universe(generate(&StockConfig::sized(4, 6)).universe).unwrap();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    let before = e.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap();
    e.save_snapshot(&path).unwrap();

    // Snapshots carry the universe (including materialised views at save
    // time); rules and programs are code and get reinstalled.
    let mut e2 = Engine::load_snapshot(&path).unwrap();
    idl::transparency::install_two_level_mapping(&mut e2).unwrap();
    let after = e2.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap();
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn request_atomicity_spans_program_calls() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    e.execute(idl::transparency::standard_update_programs()).unwrap();
    // First item inserts via program; second item fails its signature
    // check; the whole request must roll back.
    let err =
        e.update("?.dbU.insStk(.stk=a,.date=3/4/85,.price=1), .dbU.insStk(.stk=b)").unwrap_err();
    assert!(matches!(err, EngineError::Eval(_)));
    assert!(!e.query("?.euter.r(.stkCode=a)").unwrap().is_true(), "rolled back");
}

#[test]
fn view_refresh_is_incremental_wrt_journal() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    e.add_rules(".dbI.p(.stk=S) <- .euter.r(.stkCode=S) ;").unwrap();
    e.query("?.dbI.p(.stk=S)").unwrap();
    let v1 = e.store().version();
    // queries do not re-materialise
    e.query("?.dbI.p(.stk=S)").unwrap();
    e.query("?.euter.r(.stkCode=S)").unwrap();
    assert_eq!(e.store().version(), v1);
    // an update does
    e.update("?.euter.r+(.date=3/4/85,.stkCode=ibm,.clsPrice=1)").unwrap();
    e.query("?.dbI.p(.stk=ibm)").unwrap();
    assert!(e.store().version() > v1);
}

#[test]
fn views_and_base_share_a_database() {
    // §2's empMgr lives in the same database as its base relations; the
    // derived catalog must protect exactly the view relation.
    let mut e = Engine::from_store(idl_workload::empdept::generate_store(
        &idl_workload::empdept::EmpDeptConfig { employees: 10, departments: 2, seed: 3 },
    ));
    e.add_rules(idl_workload::empdept::emp_mgr_rule()).unwrap();

    // the view answers
    assert!(e.query("?.hr.empMgr(.name=emp0001, .mgr=M)").unwrap().is_true());
    // base updates still allowed
    e.update("?.hr.emp+(.name=emp9999, .dno=0)").unwrap();
    assert!(e.query("?.hr.empMgr(.name=emp9999, .mgr=M)").unwrap().is_true());
    // view updates rejected
    let err = e.update("?.hr.empMgr+(.name=x, .mgr=y)").unwrap_err();
    assert!(matches!(err, EngineError::Eval(idl_eval::EvalError::UpdateOnDerived(_))));
}

#[test]
fn analyze_matches_runtime_behaviour() {
    let e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    // what the analyzer flags, the runtime rejects; what it passes, runs
    let flagged = e.analyze("?.euter.r(.clsPrice>P)").unwrap();
    assert!(!flagged.is_empty());
    let clean = e.analyze("?.euter.r(.clsPrice=P), .euter.r(.clsPrice>P)").unwrap();
    assert!(clean.is_empty());

    let mut e = e;
    assert!(e.query("?.euter.r(.clsPrice>P)").is_err());
    assert!(e.query("?.euter.r(.clsPrice=P), .euter.r(.clsPrice>P)").is_ok());
}

#[test]
fn engine_options_toggle_evaluator_modes() {
    use idl::EngineOptions;
    let quotes = generate(&StockConfig::sized(6, 10));
    let build = |opts: EngineOptions| {
        let mut e = Engine::from_universe(quotes.universe.clone()).unwrap();
        e.set_options(opts);
        e
    };
    let q = "?.euter.r(.stkCode=stk002, .clsPrice>0, .date=D)";
    let mut fast = build(EngineOptions::default());
    let mut naive =
        build(EngineOptions { eval: idl::EvalOptions::naive(), ..EngineOptions::default() });
    assert_eq!(fast.query(q).unwrap(), naive.query(q).unwrap());
}

#[test]
fn error_messages_name_the_problem() {
    let mut e = Engine::new();
    let err = e.execute("?.euter.r(.a=").unwrap_err();
    assert!(err.to_string().contains("expected a term"), "{err}");
    let err = e.query("?.nodb.r+(.a=Q)").unwrap_err();
    assert!(err.to_string().contains('Q'), "{err}");
}
