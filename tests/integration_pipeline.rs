//! Cross-crate integration: parse → evaluate → store → persist, driven
//! through the public `idl::Engine` API the way an embedding application
//! would use it.

use idl::{Engine, EngineError, Value};
use idl_repro as _;
use idl_workload::stock::{generate, StockConfig};

#[test]
fn full_script_lifecycle() {
    // One source text carrying data loading, view definitions, programs,
    // and queries — executed in order.
    let mut e = Engine::new();
    let outcomes = e
        .execute(
            "
            % load a little base data
            ?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50) ;
            ?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=62) ;
            ?.euter.r+(.date=3/3/85,.stkCode=ibm,.clsPrice=160) ;

            % a view and a program
            .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
            .dbU.del(.stk=S) -> .euter.r-(.stkCode=S) ;

            % use both
            ?.dbI.p(.stk=S, .clsPrice>100) ;
            ?.dbU.del(.stk=ibm) ;
            ?.dbI.p(.stk=S, .clsPrice>100) ;
            ",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 8);
    assert_eq!(
        outcomes[5].answers().unwrap().column("S"),
        vec![Value::str("ibm")],
        "view sees the loaded data"
    );
    assert!(
        outcomes[7].answers().unwrap().is_empty(),
        "after del(ibm) the view reflects the change"
    );
}

#[test]
fn snapshot_persistence_with_views_reinstalled() {
    let dir = std::env::temp_dir().join("idl-integration-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("universe.json");

    let mut e = Engine::from_universe(generate(&StockConfig::sized(4, 6)).universe).unwrap();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    let before = e.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap();
    e.save_snapshot(&path).unwrap();

    // Snapshots carry the universe (including materialised views at save
    // time); rules and programs are code and get reinstalled.
    let mut e2 = Engine::load_snapshot(&path).unwrap();
    idl::transparency::install_two_level_mapping(&mut e2).unwrap();
    let after = e2.query("?.dbI.p(.stk=S,.date=D,.clsPrice=P)").unwrap();
    assert_eq!(before, after);
    std::fs::remove_file(&path).ok();
}

#[test]
fn request_atomicity_spans_program_calls() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    e.execute(idl::transparency::standard_update_programs()).unwrap();
    // First item inserts via program; second item fails its signature
    // check; the whole request must roll back.
    let err =
        e.update("?.dbU.insStk(.stk=a,.date=3/4/85,.price=1), .dbU.insStk(.stk=b)").unwrap_err();
    assert!(matches!(err, EngineError::Eval(_)));
    assert!(!e.query("?.euter.r(.stkCode=a)").unwrap().is_true(), "rolled back");
}

#[test]
fn view_refresh_is_incremental_wrt_journal() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    e.add_rules(".dbI.p(.stk=S) <- .euter.r(.stkCode=S) ;").unwrap();
    e.query("?.dbI.p(.stk=S)").unwrap();
    let v1 = e.store().version();
    // queries do not re-materialise
    e.query("?.dbI.p(.stk=S)").unwrap();
    e.query("?.euter.r(.stkCode=S)").unwrap();
    assert_eq!(e.store().version(), v1);
    // an update does
    e.update("?.euter.r+(.date=3/4/85,.stkCode=ibm,.clsPrice=1)").unwrap();
    e.query("?.dbI.p(.stk=ibm)").unwrap();
    assert!(e.store().version() > v1);
}

#[test]
fn views_and_base_share_a_database() {
    // §2's empMgr lives in the same database as its base relations; the
    // derived catalog must protect exactly the view relation.
    let mut e = Engine::from_store(idl_workload::empdept::generate_store(
        &idl_workload::empdept::EmpDeptConfig { employees: 10, departments: 2, seed: 3 },
    ));
    e.add_rules(idl_workload::empdept::emp_mgr_rule()).unwrap();

    // the view answers
    assert!(e.query("?.hr.empMgr(.name=emp0001, .mgr=M)").unwrap().is_true());
    // base updates still allowed
    e.update("?.hr.emp+(.name=emp9999, .dno=0)").unwrap();
    assert!(e.query("?.hr.empMgr(.name=emp9999, .mgr=M)").unwrap().is_true());
    // view updates rejected
    let err = e.update("?.hr.empMgr+(.name=x, .mgr=y)").unwrap_err();
    assert!(matches!(err, EngineError::Eval(idl_eval::EvalError::UpdateOnDerived(_))));
}

#[test]
fn analyze_matches_runtime_behaviour() {
    let e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    // what the analyzer flags, the runtime rejects; what it passes, runs
    let flagged = e.analyze("?.euter.r(.clsPrice>P)").unwrap();
    assert!(!flagged.is_empty());
    let clean = e.analyze("?.euter.r(.clsPrice=P), .euter.r(.clsPrice>P)").unwrap();
    assert!(clean.is_empty());

    let mut e = e;
    assert!(e.query("?.euter.r(.clsPrice>P)").is_err());
    assert!(e.query("?.euter.r(.clsPrice=P), .euter.r(.clsPrice>P)").is_ok());
}

#[test]
fn engine_options_toggle_evaluator_modes() {
    use idl::EngineOptions;
    let quotes = generate(&StockConfig::sized(6, 10));
    let build = |opts: EngineOptions| {
        let mut e = Engine::from_universe(quotes.universe.clone()).unwrap();
        e.set_options(opts);
        e
    };
    let q = "?.euter.r(.stkCode=stk002, .clsPrice>0, .date=D)";
    let mut fast = build(EngineOptions::default());
    let mut naive =
        build(EngineOptions { eval: idl::EvalOptions::naive(), ..EngineOptions::default() });
    assert_eq!(fast.query(q).unwrap(), naive.query(q).unwrap());
}

#[test]
fn error_messages_name_the_problem() {
    let mut e = Engine::new();
    let err = e.execute("?.euter.r(.a=").unwrap_err();
    assert!(err.to_string().contains("expected a term"), "{err}");
    let err = e.query("?.nodb.r+(.a=Q)").unwrap_err();
    assert!(err.to_string().contains('Q'), "{err}");
}

// ---------------------------------------------------------------------
// Durable-engine recovery edges (snapshot + op log through the public
// `DurableEngine` API; the crash battery proper is tests/crash_recovery.rs).
// ---------------------------------------------------------------------

mod recovery_edges {
    use idl::{Backend, DurableEngine, Engine};
    use idl_storage::oplog;
    use idl_storage::{CommitSeal, MemStorage, RealVfs, StorageEngine, Store, Vfs};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idl-recovery-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_log_file_opens_cleanly() {
        let dir = fresh_dir("empty-log");
        std::fs::write(dir.join("ops.idl"), b"").unwrap();
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.log_len().unwrap(), 0);
        assert_eq!(d.durability_stats().records_recovered, 0);
        d.update("?.db.r+(.a=1)").unwrap();
        assert_eq!(d.log_len().unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_only_recovery_without_a_snapshot() {
        let dir = fresh_dir("log-only");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.update("?.db.r+(.a=2)").unwrap();
        }
        assert!(!dir.join("universe.json").exists(), "no checkpoint ran");
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_only_recovery_without_a_log() {
        let dir = fresh_dir("snap-only");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
        }
        std::fs::remove_file(dir.join("ops.idl")).unwrap();
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.query("?.db.r(.a=1)").unwrap().is_true());
        d.update("?.db.r+(.a=2)").unwrap();
        assert_eq!(d.log_len().unwrap(), 1, "a fresh log accepts appends");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_lsns_replay_at_most_once() {
        // A non-idempotent program call duplicated in the log (the
        // crash-mid-rewrite shape): LSNs bound replay to once each.
        let dir = fresh_dir("dup-lsn");
        let stmts = [
            (1u64, "?.dbU.bump(.k = a)"),
            (1u64, "?.dbU.bump(.k = a)"), // duplicated record
            (2u64, "?.dbU.bump(.k = b)"),
        ];
        std::fs::write(dir.join("ops.idl"), oplog::encode_log(stmts)).unwrap();
        let setup = |e: &mut Engine| e.execute(".dbU.bump(.k=K) -> .db.hits+(.k=K) ;").map(|_| ());
        let mut d = DurableEngine::open_with(&dir, setup).unwrap();
        let stats = d.durability_stats();
        assert_eq!(stats.records_recovered, 2);
        assert_eq!(stats.records_skipped, 1);
        assert_eq!(d.query("?.db.hits(.k=K)").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_lsn_skips_covered_records() {
        // Snapshot at LSN 2 plus a stale pre-rotation log with LSNs 1..3:
        // only record 3 replays (the crash-between-checkpoint-renames
        // window).
        let dir = fresh_dir("covered");
        let mut covered = Store::new();
        covered
            .insert("db", "r", idl_object::tuple! { a: 1i64 })
            .and_then(|_| covered.insert("db", "r", idl_object::tuple! { a: 2i64 }))
            .unwrap();
        let vfs: Arc<dyn Vfs> = Arc::new(RealVfs::new());
        let mut storage = MemStorage::new(vfs, &dir, Default::default(), true);
        storage.recover().unwrap();
        storage
            .apply_full(&covered, &CommitSeal { lsn: 2, maintenance: None, sync: true })
            .unwrap();
        let stale =
            [(1u64, "?.db.r+(.a = 1)"), (2u64, "?.db.r+(.a = 2)"), (3u64, "?.db.r+(.a = 3)")];
        std::fs::write(dir.join("ops.idl"), oplog::encode_log(stale)).unwrap();
        // the snapshot above was written through MemStorage, so the
        // reopen pins the mem backend (an IDL_STORAGE=paged default
        // would look for a page file instead)
        let opts = idl::DurabilityOptions {
            storage: idl::StorageSpec::Mem,
            ..idl::DurabilityOptions::default()
        };
        let mut d =
            DurableEngine::open_with_vfs(&dir, Arc::new(RealVfs::new()), opts, |_| Ok(())).unwrap();
        let stats = d.durability_stats();
        assert_eq!(stats.records_skipped, 2);
        assert_eq!(stats.records_recovered, 1);
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 3);
        assert_eq!(d.last_lsn(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paper_update_programs_recover_through_open() {
        // §5 direct decrees and §7 update programs logged as calls,
        // replayed through `open_with` with the mapping reinstalled.
        let dir = fresh_dir("paper-programs");
        let setup = |e: &mut Engine| idl::transparency::install_two_level_mapping(e);
        {
            let mut d = DurableEngine::open_with(&dir, setup).unwrap();
            d.update("?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=50)").unwrap();
            d.update("?.dbU.insStk(.stk=sun, .date=3/6/85, .price=30)").unwrap();
            d.update("?.dbE.r+(.date=3/7/85, .stkCode=newco, .clsPrice=9)").unwrap();
            d.update("?.dbU.delStk(.stk=hp, .date=3/3/85)").unwrap();
        }
        let mut d = DurableEngine::open_with(&dir, setup).unwrap();
        assert!(d.query("?.euter.r(.stkCode=sun)").unwrap().is_true());
        assert!(d.query("?.ource.sun(.clsPrice=30)").unwrap().is_true());
        assert!(d.query("?.dbE.r(.stkCode=newco)").unwrap().is_true());
        assert!(!d.query("?.euter.r(.stkCode=hp)").unwrap().is_true());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_line_log_accepted_and_migrated() {
        let dir = fresh_dir("legacy");
        std::fs::write(dir.join("ops.idl"), "?.db.r+(.a=1)\n?.db.r+(.a=2)\n").unwrap();
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.durability_stats().migrated_legacy);
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        let bytes = std::fs::read(dir.join("ops.idl")).unwrap();
        assert!(bytes.starts_with(oplog::MAGIC), "rewritten in the framed format");
        std::fs::remove_dir_all(&dir).ok();
    }
}
