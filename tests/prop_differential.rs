//! Property-based differential testing (DESIGN.md §7).
//!
//! * the planned/indexed evaluator and the naive reference evaluator agree
//!   on random universes for a battery of query shapes;
//! * the §5 decree semantics holds on random ground facts: after `+e`,
//!   `?e` is true; after `-e`, `?e` is false;
//! * request atomicity: a failing request leaves the universe unchanged.

use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_statement, Statement};
use idl_object::Value;
use idl_repro as _;
use idl_storage::Store;
use idl_workload::random::{random_store, RandomConfig};
use proptest::prelude::*;

/// Query shapes exercising selection, higher-order enumeration, joins,
/// negation and ranges over the random universes' attribute pool.
const BATTERY: &[&str] = &[
    "?.db0.r0(.a=V)",
    "?.D.R(.a=V)",
    "?.D.R(.A=7)",
    "?.db1.r1(.a=X, .b=Y)",
    "?.db0.r0(.a=V), .db1.r1(.a=V)",
    "?.db0.r0(.a=V), .db0.r0¬(.b=V)",
    "?.D.R(.a>0)",
    "?.db2.r2(.a>0, .a<20)",
    "?.X.Y(.c=V), X != db0",
    "?.db0.r0(.A=V), .db1.r0(.A=W)",
];

fn answers(store: &Store, src: &str, opts: EvalOptions) -> idl_eval::AnswerSet {
    let Statement::Request(req) = parse_statement(src).unwrap() else { panic!("{src}") };
    Evaluator::new(store, opts).query(&req).unwrap_or_else(|e| panic!("{src}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planner_and_indexes_preserve_answers(seed in 0u64..10_000) {
        let cfg = RandomConfig::default();
        let store = random_store(seed, &cfg);
        for src in BATTERY {
            let naive = answers(&store, src, EvalOptions::naive());
            let planned = answers(
                &store,
                src,
                EvalOptions { use_indexes: false, reorder: true, ..EvalOptions::default() },
            );
            let indexed = answers(&store, src, EvalOptions::default());
            prop_assert_eq!(&naive, &planned, "planner changed answers for {} (seed {})", src, seed);
            prop_assert_eq!(&naive, &indexed, "indexes changed answers for {} (seed {})", src, seed);
        }
    }

    #[test]
    fn decree_semantics_plus_then_minus(
        a in -50i64..50,
        b in prop::sample::select(vec!["x", "y", "zz", "hello world"]),
        c in -500i64..500,
    ) {
        // a random ground fact
        let c = c as f64 / 10.0;
        let fact = format!("(.a={a}, .b=\"{b}\", .c={c})");
        let mut store = Store::new();
        store.create_relation("db", "r").unwrap();
        let registry = idl_eval::ProgramRegistry::new();
        let derived = idl_eval::rules::DerivedCatalog::empty();

        let run = |store: &mut Store, src: &str| {
            let Statement::Request(req) = parse_statement(src).unwrap() else { panic!() };
            idl_eval::run_request(store, &registry, &derived, &req, EvalOptions::default())
                .unwrap()
        };

        // +e then ?e is true (decree of truth henceforth)
        run(&mut store, &format!("?.db.r+{fact}"));
        let now_true = run(&mut store, &format!("?.db.r{fact}")).answers.is_true();
        prop_assert!(now_true);

        // inserting again is a no-op (sets are value-based)
        let out = run(&mut store, &format!("?.db.r+{fact}"));
        prop_assert_eq!(out.stats.inserted, 0);
        prop_assert_eq!(store.relation("db", "r").unwrap().len(), 1);

        // -e then ?e is false (decree of falsehood henceforth)
        run(&mut store, &format!("?.db.r-{fact}"));
        let now_false = !run(&mut store, &format!("?.db.r{fact}")).answers.is_true();
        prop_assert!(now_false);
    }

    #[test]
    fn failed_requests_change_nothing(seed in 0u64..10_000) {
        let cfg = RandomConfig::default();
        let mut store = random_store(seed, &cfg);
        let before = store.universe().clone();
        let registry = idl_eval::ProgramRegistry::new();
        let derived = idl_eval::rules::DerivedCatalog::empty();
        // first item mutates, second always errors (unbound make-true)
        let Statement::Request(req) =
            parse_statement("?.db0.r0+(.a=1,.b=2), .db0.r0+(.a=Q)").unwrap()
        else {
            panic!()
        };
        let err = idl_eval::run_request(
            &mut store,
            &registry,
            &derived,
            &req,
            EvalOptions::default(),
        );
        prop_assert!(err.is_err());
        prop_assert_eq!(store.universe(), &before);
    }

    #[test]
    fn view_materialisation_is_deterministic_and_idempotent(seed in 0u64..10_000) {
        use idl_eval::rules::RuleEngine;
        use idl_lang::parse_program;
        let rules_src = "
            .agg.all(.db=D, .rel=R, .val=V) <- .D.R(.a=V) ;
            .agg.large(.val=V) <- .agg.all(.val=V), V > 10 ;
        ";
        let rules: Vec<_> = parse_program(rules_src)
            .unwrap()
            .into_iter()
            .map(|s| match s {
                Statement::Rule(r) => r,
                _ => unreachable!(),
            })
            .collect();
        let engine = RuleEngine::new(rules).unwrap();

        let cfg = RandomConfig::default();
        let mut s1 = random_store(seed, &cfg);
        let mut s2 = random_store(seed, &cfg);
        engine.materialize(&mut s1, EvalOptions::default()).unwrap();
        engine.materialize(&mut s2, EvalOptions::naive()).unwrap();
        prop_assert_eq!(s1.universe(), s2.universe(), "options must not affect fixpoints");

        let snapshot = s1.universe().clone();
        let again = engine.materialize(&mut s1, EvalOptions::default()).unwrap();
        prop_assert_eq!(again.facts_added, 0, "idempotent re-derivation");
        prop_assert_eq!(s1.universe(), &snapshot);
    }

    #[test]
    fn snapshot_round_trip_random_universe(seed in 0u64..10_000) {
        let cfg = RandomConfig::default();
        let store = random_store(seed, &cfg);
        let json = idl_storage::persist::to_json(&store).unwrap();
        let back = idl_storage::persist::from_json(&json).unwrap();
        prop_assert_eq!(store.universe(), back.universe());
    }

    #[test]
    fn aggregate_variable_binding_is_total(seed in 0u64..10_000) {
        // `=R` binds any relation object; every relation the catalog lists
        // must be reachable this way (aggregate variables, §4.1).
        let cfg = RandomConfig::default();
        let store = random_store(seed, &cfg);
        let a = answers(&store, "?.D.R=Rel", EvalOptions::default());
        let mut from_catalog = 0usize;
        for db in store.database_names() {
            from_catalog += store.relation_names(db.as_str()).unwrap().len();
        }
        prop_assert_eq!(a.len(), from_catalog);
        for s in a.iter() {
            let rel = s.get(&idl_lang::Var::new("Rel")).unwrap();
            prop_assert!(matches!(rel, Value::Set(_)));
        }
    }
}
