//! The network-fault battery: deterministic seeded schedules of
//! misbehaving peers against a live server, with an honest session
//! interleaved throughout.
//!
//! Each schedule derives one abusive session from a seeded xorshift
//! stream — a mid-frame disconnect, a slowloris trickling one byte at a
//! time (sometimes completing, sometimes cut), a peer that stops reading
//! its replies and closes with data pending (an abrupt-reset
//! approximation: the kernel answers unread data with RST), garbage
//! bytes where a frame header belongs, or a wrong handshake magic. After
//! every abusive session the honest client performs a durable update and
//! a read-your-writes query, which must succeed; at the end the served
//! universe must be byte-identical to an oracle replaying only the
//! honest updates.
//!
//! The base seed mixes in `IDL_NETFAULT_SEED` (CI pins it); a failing
//! schedule's message embeds its seed, so reproduction is one env var.

use idl::Engine;
use idl_server::{protocol, serve, Client, ServeMode, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const EVENT_SCHEDULES: u64 = 64;
const THREADED_SCHEDULES: u64 = 16;

const RULES: &str = ".v.all(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;";

/// `IDL_NETFAULT_SEED` perturbs every schedule (CI pins it).
fn base_seed() -> u64 {
    std::env::var("IDL_NETFAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// xorshift64* — tiny, seedable, good enough to scatter fault shapes.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn serve_stock(mode: ServeMode) -> ServerHandle {
    let mut engine = Engine::new();
    engine.add_rules(RULES).unwrap();
    let cfg = ServerConfig {
        mode,
        max_frame: 1 << 20,
        // Short enough that an abandoned mid-frame socket cannot outlive
        // the test run, long enough to never reap the honest session.
        idle_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    };
    serve(Box::new(engine), cfg).expect("server starts")
}

/// Raw connect + protocol handshake, consuming the Pong greeting.
fn raw_handshake(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.write_all(protocol::MAGIC)?;
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic)?;
    assert_eq!(&magic, protocol::MAGIC, "greeting magic");
    protocol::read_frame(&mut stream, 1 << 20, &mut |_| None)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(stream)
}

/// A serialized `Ping` frame (header + payload bytes).
fn ping_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    protocol::write_frame(&mut buf, b"\"Ping\"", 4096).unwrap();
    buf
}

/// One seeded abusive session. Every branch must leave the *server*
/// healthy; the caller checks that with the honest client afterwards.
fn run_fault_schedule(addr: SocketAddr, seed: u64) {
    let mut rng = Rng::new(seed);
    match rng.below(6) {
        // Mid-frame disconnect: a header promising a payload that never
        // fully arrives, then EOF.
        0 => {
            let Ok(mut stream) = raw_handshake(addr) else { return };
            let declared = 16 + rng.below(1000) as u32;
            let mut partial = Vec::new();
            partial.extend_from_slice(&declared.to_le_bytes());
            partial.extend_from_slice(&(rng.next() as u32).to_le_bytes());
            let sent = rng.below(declared as u64) as usize;
            partial.extend(std::iter::repeat_n(0xAB, sent));
            let _ = stream.write_all(&partial);
        }
        // Slowloris, completing: a valid Ping trickles in one byte at a
        // time; incremental frame assembly must still answer Pong.
        1 => {
            let Ok(mut stream) = raw_handshake(addr) else { return };
            for byte in ping_frame() {
                stream.write_all(&[byte]).unwrap();
                std::thread::sleep(Duration::from_millis(1 + rng.below(2)));
            }
            let pong = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
            assert!(
                String::from_utf8(pong).unwrap().contains("Pong"),
                "schedule seed {seed}: slowloris ping got no Pong"
            );
        }
        // Slowloris, cut: the trickle stops partway and the peer leaves.
        2 => {
            let Ok(mut stream) = raw_handshake(addr) else { return };
            let frame = ping_frame();
            let cut = 1 + rng.below(frame.len() as u64 - 1) as usize;
            for &byte in &frame[..cut] {
                let _ = stream.write_all(&[byte]);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Reader walks away: several requests go down the pipe, then the
        // socket closes with every reply unread (pending inbound data on
        // close makes the kernel send RST — the abrupt-reset shape).
        3 => {
            let Ok(mut stream) = raw_handshake(addr) else { return };
            for _ in 0..=rng.below(4) {
                let _ = stream.write_all(&ping_frame());
            }
            // no reads: replies are in flight when the socket drops
        }
        // Garbage where a frame belongs: either an absurd declared
        // length (E-TOO-LARGE) or a corrupt checksum (E-FRAME); the
        // abuser may or may not stay to read the error frame.
        4 => {
            let Ok(mut stream) = raw_handshake(addr) else { return };
            let mut junk = Vec::new();
            if rng.below(2) == 0 {
                junk.extend_from_slice(&u32::MAX.to_le_bytes());
                junk.extend_from_slice(&(rng.next() as u32).to_le_bytes());
            } else {
                junk.extend_from_slice(&6u32.to_le_bytes());
                junk.extend_from_slice(&(rng.next() as u32).to_le_bytes());
                junk.extend_from_slice(b"\"Ping\"");
            }
            let _ = stream.write_all(&junk);
            if rng.below(2) == 0 {
                let mut reply = Vec::new();
                let _ = stream.read_to_end(&mut reply);
                assert!(
                    !reply.is_empty(),
                    "schedule seed {seed}: garbage frame drew no error frame"
                );
            }
        }
        // Wrong handshake magic: the server hangs up without a frame.
        _ => {
            let Ok(mut stream) = TcpStream::connect(addr) else { return };
            let mut bogus = *protocol::MAGIC;
            bogus[rng.below(8) as usize] ^= 0x20;
            let _ = stream.write_all(&bogus);
            let mut reply = Vec::new();
            let _ = stream.read_to_end(&mut reply);
            // anything but a protocol greeting is fine; most of the time
            // the socket just closes
        }
    }
}

fn seeded_faults_stay_isolated(mode: ServeMode, schedules: u64) {
    let handle = serve_stock(mode);
    let addr = handle.local_addr();
    let mut honest = Client::connect(addr).expect("honest client connects");

    for i in 0..schedules {
        let seed = (0x5EED_0000 + i) ^ base_seed();
        run_fault_schedule(addr, seed);
        // The honest session keeps its full service level after every
        // abusive peer: a durable update, then read-your-writes through
        // base and view in one snapshot.
        let out = honest
            .update(&format!("?.db.r+(.c=1, .k={i})"))
            .unwrap_or_else(|e| panic!("schedule seed {seed} ({mode}): honest update: {e}"));
        assert_eq!(out.stats().unwrap().inserted, 1, "schedule seed {seed}");
        let answers = honest
            .query("?.db.r(.c=1, .k=K), .v.all(.c=1, .k=K)")
            .unwrap_or_else(|e| panic!("schedule seed {seed} ({mode}): honest query: {e}"));
        assert_eq!(answers.len(), (i + 1) as usize, "schedule seed {seed} read-your-writes");
    }

    // The final universe contains exactly the honest updates: no abusive
    // byte stream ever reached the engine as a mutation.
    let served = Client::connect(addr).unwrap().dump_universe().unwrap();
    let mut oracle = Engine::new();
    oracle.add_rules(RULES).unwrap();
    for i in 0..schedules {
        oracle.update(&format!("?.db.r+(.c=1, .k={i})")).unwrap();
    }
    oracle.refresh_views().unwrap();
    assert_eq!(served, oracle.universe_json().unwrap(), "{mode}: faulted state diverged");

    drop(honest);
    let stats = handle.shutdown();
    assert_eq!(stats.sessions_active, 0, "{mode}: sessions leaked");
    // Roughly one schedule in six writes garbage framing; demand that a
    // healthy share of those was rejected (not an exact count — a peer
    // that resets before the reactor reads may retract its bytes).
    assert!(stats.frames_rejected >= schedules / 8, "{mode}: no frame ever rejected?");
}

#[test]
fn event_mode_survives_64_seeded_fault_schedules() {
    seeded_faults_stay_isolated(ServeMode::Event, EVENT_SCHEDULES);
}

#[test]
fn threaded_mode_survives_seeded_fault_schedules() {
    seeded_faults_stay_isolated(ServeMode::Threaded, THREADED_SCHEDULES);
}
