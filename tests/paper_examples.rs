//! Every worked example from the paper, as assertions (experiments E1–E7
//! of DESIGN.md; E8 lives in `baseline_inexpressibility.rs`). The
//! `experiments` binary prints the same checks with narration; this file
//! is the CI-facing version.

use idl::{Engine, Value};
use idl_repro as _;

fn paper_engine() -> Engine {
    Engine::with_stock_universe(vec![
        ("3/3/85", "hp", 50.0),
        ("3/3/85", "ibm", 160.0),
        ("3/3/85", "sun", 35.0),
        ("3/4/85", "hp", 62.0),
        ("3/4/85", "ibm", 155.0),
        ("3/4/85", "sun", 36.0),
        ("3/5/85", "hp", 61.0),
        ("3/5/85", "ibm", 210.0),
        ("3/5/85", "sun", 34.0),
    ])
}

fn date(s: &str) -> Value {
    Value::date(s.parse().unwrap())
}

// ---- E1: §4.2 first-order queries -------------------------------------

#[test]
fn e1_hp_ever_above_60() {
    let mut e = paper_engine();
    assert!(e.query("?.euter.r(.stkCode=hp, .clsPrice>60)").unwrap().is_true());
    assert!(!e.query("?.euter.r(.stkCode=hp, .clsPrice>62)").unwrap().is_true());
}

#[test]
fn e1_join_dates_hp_and_ibm() {
    let mut e = paper_engine();
    let a = e
        .query("?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)")
        .unwrap();
    assert_eq!(a.column("D"), vec![date("3/4/85"), date("3/5/85")]);
}

#[test]
fn e1_alltime_high_with_negation() {
    let mut e = paper_engine();
    let a = e
        .query("?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp, .clsPrice>P)")
        .unwrap();
    assert_eq!(a.column("P"), vec![Value::float(62.0)]);
    assert_eq!(a.column("D"), vec![date("3/4/85")]);
}

#[test]
fn e1_any_stock_above_200() {
    let mut e = paper_engine();
    let a = e.query("?.euter.r(.stkCode=S, .clsPrice>200)").unwrap();
    assert_eq!(a.column("S"), vec![Value::str("ibm")]);
}

#[test]
fn e1_query2_per_day_maximum_all_schemata() {
    // §2's query 2: "For each day, list the stock with the highest closing
    // price" — needs higher-order quantification on chwab/ource.
    let mut e = paper_engine();
    // winners: 3/3 ibm(160), 3/4 ibm(155), 3/5 ibm(210)
    let expect_days = vec![date("3/3/85"), date("3/4/85"), date("3/5/85")];

    let a = e
        .query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P), .euter.r¬(.date=D,.clsPrice>P)")
        .unwrap();
    assert_eq!(a.column("D"), expect_days);
    assert_eq!(a.column("S"), vec![Value::str("ibm")]);

    let a = e.query("?.chwab.r(.date=D,.S=P), S != date, .chwab.r¬(.date=D,.S2>P)").unwrap();
    assert_eq!(a.column("D"), expect_days);
    assert_eq!(a.column("S"), vec![Value::str("ibm")]);

    let a = e.query("?.ource.S(.date=D,.clsPrice=P), .ource¬.S2(.date=D,.clsPrice>P)").unwrap();
    assert_eq!(a.column("D"), expect_days);
    assert_eq!(a.column("S"), vec![Value::str("ibm")]);
}

// ---- E2: §4.3 higher-order queries -------------------------------------

#[test]
fn e2_database_and_relation_names() {
    let mut e = paper_engine();
    let a = e.query("?.X.Y").unwrap();
    assert_eq!(a.column("X"), vec![Value::str("chwab"), Value::str("euter"), Value::str("ource")]);
    let a = e.query("?.ource.Y").unwrap();
    assert_eq!(a.column("Y"), vec![Value::str("hp"), Value::str("ibm"), Value::str("sun")]);
}

#[test]
fn e2_footnote7_constraint() {
    let mut e = paper_engine();
    let a = e.query("?.X.Y, X = ource").unwrap();
    assert_eq!(a.column("X"), vec![Value::str("ource")]);
    assert_eq!(a.column("Y").len(), 3);
}

#[test]
fn e2_databases_with_relation_hp() {
    let mut e = paper_engine();
    let a = e.query("?.X.hp").unwrap();
    assert_eq!(a.column("X"), vec![Value::str("ource")]);
}

#[test]
fn e2_attribute_search() {
    let mut e = paper_engine();
    let a = e.query("?.X.Y(.stkCode)").unwrap();
    assert_eq!(a.column("X"), vec![Value::str("euter")]);
    assert_eq!(a.column("Y"), vec![Value::str("r")]);
}

#[test]
fn e2_cross_database_price_join() {
    let mut e = paper_engine();
    let a = e.query("?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)").unwrap();
    // all three stocks match (same facts in both schemata)
    assert_eq!(a.column("S").len(), 3);
}

#[test]
fn e2_relations_in_all_databases() {
    let mut e = paper_engine();
    assert!(e.query("?.euter.Y, .chwab.Y, .ource.Y").unwrap().is_empty());
    let a = e.query("?.euter.Y, .chwab.Y").unwrap();
    assert_eq!(a.column("Y"), vec![Value::str("r")]);
}

#[test]
fn e2_above_200_all_three_schemata() {
    let mut e = paper_engine();
    for q in
        ["?.euter.r(.stkCode=S,.clsPrice>200)", "?.chwab.r(.S>200)", "?.ource.S(.clsPrice>200)"]
    {
        let a = e.query(q).unwrap();
        assert_eq!(a.column("S"), vec![Value::str("ibm")], "{q}");
    }
}

// ---- E3: §5.2 update expressions ----------------------------------------

#[test]
fn e3_insert_delete_round_trip() {
    let mut e = paper_engine();
    let st = e.update("?.euter.r+(.date=3/3/85,.stkCode=dec,.clsPrice=50)").unwrap();
    assert_eq!(st.inserted, 1);
    assert!(e.query("?.euter.r(.stkCode=dec)").unwrap().is_true());
    let st = e.update("?.euter.r-(.date=3/3/85,.stkCode=dec)").unwrap();
    assert_eq!(st.deleted, 1);
    assert!(!e.query("?.euter.r(.stkCode=dec)").unwrap().is_true());
}

#[test]
fn e3_atomic_minus_vs_attribute_minus() {
    // §5.2: both make queries on hp fail for that tuple; the second also
    // removes the attribute itself.
    let mut e = paper_engine();
    e.update("?.chwab.r(.date=3/3/85, .hp-=C)").unwrap();
    assert!(!e.query("?.chwab.r(.date=3/3/85, .hp=P)").unwrap().is_true());
    // attribute still present in the 3/3 tuple (null-valued)
    let a = e.query("?.chwab.r(.date=3/3/85, .A=V), A = hp").unwrap();
    assert!(a.is_empty(), "null value satisfies nothing");

    let mut e = paper_engine();
    e.update("?.chwab.r(.date=3/3/85, -.hp=C)").unwrap();
    assert!(!e.query("?.chwab.r(.date=3/3/85, .hp=P)").unwrap().is_true());
    assert!(
        e.query("?.chwab.r(.date=3/4/85, .hp=P)").unwrap().is_true(),
        "other tuples keep the attribute (heterogeneous set)"
    );
}

#[test]
fn e3_price_bump_with_arithmetic() {
    let mut e = paper_engine();
    e.update("?.chwab.r(.date=3/3/85,.hp=C), .chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)")
        .unwrap();
    assert!(e.query("?.chwab.r(.date=3/3/85, .hp=60)").unwrap().is_true());
}

#[test]
fn e3_update_order_significant() {
    let mut e1 = paper_engine();
    e1.update("?.euter.r-(.stkCode=hp), .euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99)").unwrap();
    assert_eq!(e1.query("?.euter.r(.stkCode=hp,.clsPrice=P)").unwrap().column("P").len(), 1);

    let mut e2 = paper_engine();
    e2.update("?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=99), .euter.r-(.stkCode=hp)").unwrap();
    assert_eq!(e2.query("?.euter.r(.stkCode=hp,.clsPrice=P)").unwrap().column("P").len(), 0);
}

// ---- E4: §6 views --------------------------------------------------------

#[test]
fn e4_unified_view() {
    let mut e = paper_engine();
    e.add_rules(idl::transparency::unified_view_rules()).unwrap();
    let a = e.query("?.dbI.p(.stk=S, .clsPrice>200)").unwrap();
    assert_eq!(a.column("S"), vec![Value::str("ibm")]);
    // every quote from every source is in p
    assert_eq!(e.query("?.dbI.p(.date=D,.stk=S,.clsPrice=P)").unwrap().len(), 9);
}

#[test]
fn e4_higher_order_view_data_dependent_relations() {
    let mut e = paper_engine();
    e.add_rules(idl::transparency::unified_view_rules()).unwrap();
    e.add_rules(idl::transparency::customized_view_rules()).unwrap();
    assert_eq!(
        e.query("?.dbO.Y").unwrap().column("Y"),
        vec![Value::str("hp"), Value::str("ibm"), Value::str("sun")]
    );
    e.update("?.euter.r+(.date=3/6/85,.stkCode=dec,.clsPrice=80)").unwrap();
    assert_eq!(e.query("?.dbO.Y").unwrap().column("Y").len(), 4, "views track data");
}

#[test]
fn e4_pnew_reconciliation() {
    let mut e = paper_engine();
    e.add_rules(idl::transparency::unified_view_rules()).unwrap();
    e.add_rules(idl::transparency::reconciled_view_rules()).unwrap();
    e.update("?.ource.hp-(.date=3/3/85), .ource.hp+(.date=3/3/85,.clsPrice=51)").unwrap();
    assert_eq!(e.query("?.dbI.p(.stk=hp,.date=3/3/85,.clsPrice=P)").unwrap().len(), 2);
    assert_eq!(
        e.query("?.dbI.pnew(.stk=hp,.date=3/3/85,.clsPrice=P)").unwrap().column("P"),
        vec![Value::float(50.0)]
    );
}

// ---- E5: §7.1 update programs --------------------------------------------

fn programs_engine() -> Engine {
    let mut e = paper_engine();
    e.execute(idl::transparency::standard_update_programs()).unwrap();
    e
}

#[test]
fn e5_delstk_translates_per_schema() {
    let mut e = programs_engine();
    e.update("?.dbU.delStk(.stk=hp, .date=3/3/85)").unwrap();
    assert!(!e.query("?.euter.r(.stkCode=hp,.date=3/3/85)").unwrap().is_true());
    assert!(!e.query("?.chwab.r(.date=3/3/85,.hp=P)").unwrap().is_true());
    assert!(!e.query("?.ource.hp(.date=3/3/85)").unwrap().is_true());
    assert!(e.query("?.euter.r(.stkCode=hp,.date=3/4/85)").unwrap().is_true());
}

#[test]
fn e5_delstk_partial_bindings() {
    let mut e = programs_engine();
    e.update("?.dbU.delStk(.stk=hp)").unwrap();
    assert!(!e.query("?.euter.r(.stkCode=hp)").unwrap().is_true());
    // structure preserved: ource.hp still a (now empty) relation
    assert!(e.store().relation_names("ource").unwrap().iter().any(|n| n.as_str() == "hp"));
}

#[test]
fn e5_rmstk_removes_metadata() {
    let mut e = programs_engine();
    e.update("?.dbU.rmStk(.stk=hp)").unwrap();
    assert!(!e.query("?.euter.r(.stkCode=hp)").unwrap().is_true());
    assert!(!e.query("?.chwab.r(.A=P), A = hp").unwrap().is_true());
    assert!(e.store().relation("ource", "hp").is_err(), "relation dropped");
}

#[test]
fn e5_insstk_binding_signature() {
    let mut e = programs_engine();
    e.update("?.dbU.insStk(.stk=dec, .date=3/3/85, .price=40)").unwrap();
    assert!(e.query("?.ource.dec(.clsPrice=40)").unwrap().is_true());
    let err = e.update("?.dbU.insStk(.stk=dec2, .date=3/3/85)").unwrap_err();
    assert!(err.to_string().contains(".price"));
    assert!(!e.query("?.euter.r(.stkCode=dec2)").unwrap().is_true(), "atomic rejection");
}

// ---- E6/E7: §7.2 + Figure 1 ------------------------------------------------

#[test]
fn e6_view_updates_route_through_programs() {
    let mut e = paper_engine();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    assert!(e.update("?.dbI.p+(.date=3/9/85,.stk=x,.clsPrice=1)").is_err());
    e.update("?.dbE.r+(.date=3/9/85, .stkCode=dec, .clsPrice=44)").unwrap();
    assert!(e.query("?.euter.r(.stkCode=dec,.clsPrice=44)").unwrap().is_true());
    assert!(e.query("?.dbO.dec(.clsPrice=44)").unwrap().is_true());
    e.update("?.dbE.r-(.date=3/9/85, .stkCode=dec)").unwrap();
    assert!(!e.query("?.dbE.r(.stkCode=dec,.clsPrice=44)").unwrap().is_true());
}

#[test]
fn e7_two_level_mapping_round_trip() {
    let mut e = paper_engine();
    idl::transparency::install_two_level_mapping(&mut e).unwrap();
    let src = e.query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
    let view = e.query("?.dbE.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
    assert_eq!(src, view);
    // a fact entering through one base schema reaches all customized views
    e.update("?.ource.newco+(.date=3/6/85, .clsPrice=9)").unwrap();
    assert!(e.query("?.dbE.r(.stkCode=newco)").unwrap().is_true());
    assert!(e.query("?.dbC.r(.newco=P)").unwrap().is_true());
    assert!(e.query("?.dbO.newco(.clsPrice=9)").unwrap().is_true());
}
