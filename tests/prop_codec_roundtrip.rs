//! Round-trip battery for the binary snapshot codec.
//!
//! Three legs:
//!
//! 1. **Round-trip** — 256 random universes encode → decode back to the
//!    identical [`Value`], and re-encoding the decoded value reproduces
//!    the original bytes (the encoding is canonical: one universe, one
//!    blob).
//! 2. **Thread independence** — the bytes depend only on the universe,
//!    not on how it was materialised (1 vs 4 fixpoint worker threads) or
//!    on how many encoders run concurrently.
//! 3. **Fail closed** — a blob with any single byte flipped, truncated,
//!    or extended decodes to a structured error, never a panic and never
//!    a silently different universe.

use idl::Engine;
use idl_object::Value;
use idl_repro as _;
use idl_storage::codec;
use idl_workload::random::{random_universe, RandomConfig};
use proptest::prelude::*;

/// Seed-driven universe shapes: from tiny (empty relations) to nested.
fn shape() -> impl Strategy<Value = RandomConfig> {
    (1usize..4, 1usize..4, 0usize..12, 0usize..4, 1usize..5).prop_map(
        |(databases, relations, tuples, max_depth, max_width)| RandomConfig {
            max_depth,
            max_width,
            databases,
            relations,
            tuples,
        },
    )
}

fn assert_roundtrip(u: &Value) {
    let blob = codec::encode_value(u);
    let back = codec::decode_value(&blob).expect("fresh blob decodes");
    assert_eq!(&back, u, "decode returned a different universe");
    assert_eq!(codec::encode_value(&back), blob, "re-encode is not byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_universes_roundtrip_byte_identical(seed in any::<u64>(), cfg in shape()) {
        let u = random_universe(seed, &cfg);
        assert_roundtrip(&u);

        // The snapshot container rides the same tree encoding plus a
        // header; check it end to end too, maintenance blob included.
        let blob = codec::encode_snapshot(&u, 3, 17, Some("{\"views\":[]}"));
        let snap = codec::decode_snapshot(&blob).expect("fresh snapshot decodes");
        prop_assert_eq!(&snap.universe, &u);
        prop_assert_eq!(snap.gen, 3);
        prop_assert_eq!(snap.lsn, 17);
        prop_assert_eq!(snap.maintenance.as_deref(), Some("{\"views\":[]}"));
        prop_assert_eq!(
            codec::encode_snapshot(&snap.universe, snap.gen, snap.lsn, snap.maintenance.as_deref()),
            blob
        );
    }

    #[test]
    fn corrupt_byte_fails_closed(seed in any::<u64>(), pos in any::<u64>(), flip in 1u8..=255) {
        let u = random_universe(seed, &RandomConfig::default());
        let blob = codec::encode_value(&u);
        let mut bad = blob.clone();
        let at = (pos % bad.len() as u64) as usize;
        bad[at] ^= flip;
        // Magic, CRC and body are all covered: any one-byte flip must
        // surface as an error (magic mismatch or checksum failure) —
        // never a panic, never a silently different value.
        prop_assert!(codec::decode_value(&bad).is_err(), "flipped byte {at} decoded");
    }

    #[test]
    fn truncation_fails_closed(seed in any::<u64>(), keep in any::<u64>()) {
        let u = random_universe(seed, &RandomConfig::default());
        let blob = codec::encode_value(&u);
        let short = &blob[..(keep % blob.len() as u64) as usize];
        prop_assert!(codec::decode_value(short).is_err(), "prefix of {} decoded", short.len());
        // Trailing garbage is rejected too (the container is exact).
        let mut long = blob.clone();
        long.push(0);
        prop_assert!(codec::decode_value(&long).is_err(), "blob with trailing byte decoded");
    }
}

/// The encoding must not depend on the thread count that materialised
/// the views: a universe computed with 1 worker and with 4 workers
/// encodes to byte-identical blobs.
#[test]
fn encoding_is_identical_across_fixpoint_thread_counts() {
    let quotes = vec![("3/3/85", "hp", 50.0), ("3/3/85", "ibm", 160.0), ("3/4/85", "hp", 62.0)];
    let encode_at = |threads: usize| {
        let mut e = Engine::with_stock_universe(quotes.clone());
        e.set_options(e.options().rebuild().threads(threads).build());
        idl::transparency::install_two_level_mapping(&mut e).expect("mapping installs");
        e.refresh_views().expect("views refresh");
        codec::encode_snapshot(e.store().universe(), 1, 0, None)
    };
    assert_eq!(encode_at(1), encode_at(4), "thread count leaked into the encoding");
}

/// Four encoders running concurrently over the same shared universe
/// produce the same bytes as a lone encoder (the interning table is
/// per-blob state, not global).
#[test]
fn concurrent_encoders_agree() {
    let u = random_universe(20260809, &RandomConfig::default());
    let expected = codec::encode_value(&u);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let u = u.clone();
                s.spawn(move || codec::encode_value(&u))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    });
}
