//! Edge-case semantics pinned as tests: corners of the §3–§5 model that
//! are easy to get wrong and not covered by the paper's own examples.

use idl::{Engine, Value};
use idl_repro as _;

fn empty() -> Engine {
    Engine::new()
}

#[test]
fn sets_of_atoms() {
    // relations need not contain tuples: a set of plain numbers
    let mut e = empty();
    e.update("?.db.nums+(=5)").unwrap();
    e.update("?.db.nums+(=7)").unwrap();
    assert!(e.query("?.db.nums(=5)").unwrap().is_true());
    assert!(e.query("?.db.nums(>6)").unwrap().is_true());
    assert!(!e.query("?.db.nums(>7)").unwrap().is_true());
    let a = e.query("?.db.nums(=X)").unwrap();
    assert_eq!(a.column("X"), vec![Value::int(5), Value::int(7)]);
    // and deleted by predicate
    e.update("?.db.nums-(>6)").unwrap();
    assert!(!e.query("?.db.nums(=7)").unwrap().is_true());
}

#[test]
fn nested_sets_navigate() {
    // a tuple attribute holding a set of tuples — the model is fully nested
    let mut e = empty();
    e.update("?.db.orders+(.id=1, .items(.sku=pen, .qty=2))").unwrap();
    e.update("?.db.orders+(.id=2, .items(.sku=ink, .qty=9))").unwrap();
    let a = e.query("?.db.orders(.id=I, .items(.qty>5))").unwrap();
    assert_eq!(a.column("I"), vec![Value::int(2)]);
}

#[test]
fn double_negation() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    // ¬¬exists == exists (for ground inner queries)
    assert!(e.query("?¬¬.euter.r(.stkCode=hp)").unwrap().is_true());
    assert!(!e.query("?¬.euter.r(.stkCode=hp)").unwrap().is_true());
    assert!(e.query("?¬.euter.r(.stkCode=ibm)").unwrap().is_true());
}

#[test]
fn higher_order_variable_bound_to_non_name_fails_quietly() {
    // binding Y to a number first makes `.Y` unsatisfiable, not an error
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    let a = e.query("?Y = 42, .euter.Y").unwrap();
    assert!(a.is_empty());
    // bound to a proper name it navigates
    let a = e.query("?Y = r, .euter.Y(.stkCode=hp)").unwrap();
    assert!(a.is_true());
}

#[test]
fn heterogeneous_relation_mixed_arity_queries() {
    let mut e = empty();
    e.update("?.db.r+(.a=1)").unwrap();
    e.update("?.db.r+(.a=2, .b=20)").unwrap();
    e.update("?.db.r+(.b=30)").unwrap();
    // fields require attribute presence
    assert_eq!(e.query("?.db.r(.a=X)").unwrap().len(), 2);
    assert_eq!(e.query("?.db.r(.b=X)").unwrap().len(), 2);
    assert_eq!(e.query("?.db.r(.a=X, .b=Y)").unwrap().len(), 1);
    // attribute enumeration sees the union of attribute names
    let attrs = e.query("?.db.r(.A=V)").unwrap();
    assert_eq!(attrs.column("A"), vec![Value::str("a"), Value::str("b")]);
}

#[test]
fn empty_relation_and_empty_universe() {
    let mut e = empty();
    assert!(e.query("?.nodb.r(.a=1)").unwrap().is_empty());
    assert!(e.query("?.X.Y").unwrap().is_empty());
    e.update("?.db.r+(.a=1)").unwrap();
    e.update("?.db.r-(.a=1)").unwrap();
    // empty (but existing) relation: scans yield nothing, negations hold
    assert!(e.query("?.db.r¬(.a=1)").unwrap().is_true());
    assert!(e.query("?.db.r=R").unwrap().is_true(), "aggregate var binds the empty set");
}

#[test]
fn whole_tuple_and_whole_database_binding() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
    // bind a whole database object (a tuple of relations)
    let a = e.query("?.euter=DB").unwrap();
    let db = &a.column("DB")[0];
    assert!(db.as_tuple().is_some());
    // bind a whole element of a set
    let a = e.query("?.euter.r(=T)").unwrap();
    let t = &a.column("T")[0];
    assert_eq!(t.attr("stkCode"), Some(&Value::str("hp")));
}

#[test]
fn date_arithmetic_in_queries() {
    let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0), ("3/4/85", "hp", 51.0)]);
    // consecutive-day self join via D2 = D + 1
    let a = e
        .query(
            "?.euter.r(.stkCode=hp,.date=D,.clsPrice=P1), D2 = D + 1, \
              .euter.r(.stkCode=hp,.date=D2,.clsPrice=P2), P2 > P1",
        )
        .unwrap();
    assert_eq!(a.len(), 1, "one up-day pair: {a}");
}

#[test]
fn comparisons_across_types_are_false_not_errors() {
    let mut e = empty();
    e.update("?.db.r+(.a=hello)").unwrap();
    // string vs int: incomparable → unsatisfied (not an error), and this
    // includes `!=` — no relop holds between incomparable atoms (the
    // SQL-unknown-like reading; see `compare_query`)
    assert!(!e.query("?.db.r(.a>5)").unwrap().is_true());
    assert!(!e.query("?.db.r(.a=5)").unwrap().is_true());
    assert!(!e.query("?.db.r(.a!=5)").unwrap().is_true());
    // same-type comparisons behave classically
    assert!(e.query("?.db.r(.a!=world)").unwrap().is_true());
}

#[test]
fn deep_nesting_round_trips_through_snapshot() {
    let mut e = empty();
    e.update("?.db.r+(.a(.b(.c(.d=1))))").unwrap();
    let dir = std::env::temp_dir().join("idl-edge-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("deep.json");
    e.save_snapshot(&path).unwrap();
    let mut e2 = Engine::load_snapshot(&path).unwrap();
    assert!(e2.query("?.db.r(.a(.b(.c(.d=1))))").unwrap().is_true());
    std::fs::remove_file(&path).ok();
}

#[test]
fn update_then_query_same_request() {
    // items run left to right: an update's effect is visible to later
    // query items in the same request
    let mut e = empty();
    let out = e.query("?.db.r+(.a=1), .db.r(.a=X)").unwrap();
    assert_eq!(out.column("X"), vec![Value::int(1)]);
}
