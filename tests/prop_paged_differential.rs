//! Paged-vs-mem storage differential battery (DESIGN.md "Paged storage
//! and the buffer pool").
//!
//! The storage backend must not be a *semantic* knob: for hundreds of
//! random update/checkpoint workloads, a durable engine running on the
//! paged backend — with a deliberately tiny, eviction-forcing buffer
//! pool — must present **byte-identical** universes to one running on
//! the in-memory + snapshot backend, live, after recovery, and under
//! the §4 query battery. The worker-thread count and plan compilation
//! are folded into the seed so the matrix covers {1, 4} threads ×
//! {compiled, tree-walk} without multiplying the case count.

use idl::{
    Backend, DurabilityOptions, DurableEngine, EngineError, FaultPlan, SimVfs, StorageSpec, Vfs,
};
use idl_repro as _;
use proptest::prelude::*;
use std::sync::Arc;

/// One step of a generated workload.
#[derive(Clone, Debug)]
enum Op {
    /// `?.d{db}.r{rel}+(.a={a}, .b={b})`
    Insert { db: u8, rel: u8, a: i64, b: i64 },
    /// `?.d{db}.r{rel}-(.a={a})` — deletes every matching row (often
    /// none; collisions in the tiny key space make hits common).
    Delete { db: u8, rel: u8, a: i64 },
    /// An oversized row that exceeds the paged backend's inline-row
    /// budget, pushing its whole relation onto the blob path.
    Jumbo { db: u8, rel: u8, a: i64 },
    /// Snapshot + log rotation on both engines.
    Checkpoint,
}

impl Op {
    fn source(&self) -> Option<String> {
        match self {
            Op::Insert { db, rel, a, b } => Some(format!("?.d{db}.r{rel}+(.a={a}, .b={b})")),
            Op::Delete { db, rel, a } => Some(format!("?.d{db}.r{rel}-(.a={a})")),
            Op::Jumbo { db, rel, a } => {
                Some(format!("?.d{db}.r{rel}+(.a={a}, .big={})", "x".repeat(1800)))
            }
            Op::Checkpoint => None,
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // weight via the selector range: 0-4 insert, 5-6 delete, 7 jumbo,
    // 8 checkpoint
    (0u8..9, 0u8..3, 0u8..3, 0i64..12, 0i64..12).prop_map(|(kind, db, rel, a, b)| match kind {
        0..=4 => Op::Insert { db, rel, a, b },
        5 | 6 => Op::Delete { db, rel, a },
        7 => Op::Jumbo { db, rel, a: a % 4 },
        _ => Op::Checkpoint,
    })
}

/// A small view layer so refreshes actually run rules — making the
/// thread-count and compile knobs meaningful — plus a negation to keep
/// the stratifier honest.
const RULES: &str = "
    .v.all(.db=D, .a=A) <- .D.R(.a=A) ;
    .v.pair(.x=A, .y=B) <- .d0.r0(.a=A), .d1.r1(.a=B) ;
    .v.only0(.a=A) <- .d0.r0(.a=A), .d1.r0¬(.a=A) ;
";

/// §4-style probes over base and derived relations.
const BATTERY: &[&str] = &[
    "?.d0.r0(.a=X, .b=Y)",
    "?.D.R(.a=X)",
    "?.v.all(.db=D, .a=A)",
    "?.v.pair(.x=X, .y=Y)",
    "?.v.only0(.a=A)",
    "?.d1.r2(.a>3)",
];

fn open(
    vfs: &Arc<SimVfs>,
    spec: StorageSpec,
    threads: usize,
    compile: bool,
) -> Result<DurableEngine, EngineError> {
    let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let opts = DurabilityOptions { storage: spec, ..DurabilityOptions::default() };
    DurableEngine::open_with_vfs("/diff", v, opts, move |e| {
        e.add_rules(RULES)?;
        let o = e.options().rebuild().threads(threads).compile(compile).build();
        e.set_options(o);
        Ok(())
    })
}

/// Runs the workload to completion on a fresh engine over `vfs`.
fn run(vfs: &Arc<SimVfs>, spec: StorageSpec, threads: usize, compile: bool, ops: &[Op]) {
    let mut d = open(vfs, spec, threads, compile).expect("open");
    for op in ops {
        match op.source() {
            Some(src) => {
                d.update(&src).unwrap_or_else(|e| panic!("{src}: {e}"));
            }
            None => {
                d.checkpoint().expect("checkpoint");
            }
        }
    }
}

/// Live universe + battery answers of a freshly-reopened engine (the
/// recovery view: base snapshot/page file + log tail replay).
fn recovered_state(
    vfs: &Arc<SimVfs>,
    spec: StorageSpec,
    threads: usize,
    compile: bool,
) -> (String, Vec<String>) {
    let mut d = open(vfs, spec, threads, compile).expect("reopen");
    d.refresh_views().expect("refresh");
    let universe = d.universe_json().expect("universe json");
    let answers = BATTERY
        .iter()
        .map(|q| format!("{:?}", d.query(q).unwrap_or_else(|e| panic!("{q}: {e}"))))
        .collect();
    (universe, answers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// paged ≡ mem: same workload, same bytes — live, recovered, and
    /// under the query battery — with a pool small enough to evict.
    #[test]
    fn paged_storage_matches_mem_storage(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(op_strategy(), 1..32),
    ) {
        let threads = if seed & 1 == 0 { 1 } else { 4 };
        let compile = seed & 2 == 0;
        // 1–4 pool pages: always far below the page file the jumbo and
        // multi-relation workloads build, so commits and recovery evict
        let pool = 1 + (seed % 4) as usize;
        let paged = StorageSpec::Paged { pool_pages: pool };

        let mem_vfs = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        let paged_vfs = Arc::new(SimVfs::new(FaultPlan::none(seed)));
        run(&mem_vfs, StorageSpec::Mem, threads, compile, &ops);
        run(&paged_vfs, paged, threads, compile, &ops);

        let (mem_universe, mem_answers) =
            recovered_state(&mem_vfs, StorageSpec::Mem, threads, compile);
        let (paged_universe, paged_answers) =
            recovered_state(&paged_vfs, paged, threads, compile);
        prop_assert_eq!(
            &mem_universe, &paged_universe,
            "recovered universes diverge (threads={}, compile={}, pool={})",
            threads, compile, pool
        );
        prop_assert_eq!(mem_answers, paged_answers);

        // a second reopen of the paged directory is byte-stable
        let (again, _) = recovered_state(&paged_vfs, paged, threads, compile);
        prop_assert_eq!(paged_universe, again);
    }
}
