//! Differential battery for copy-on-write structural sharing
//! (DESIGN.md "Structural sharing and copy-on-write").
//!
//! The CoW representation is a *cost model*, never a semantic one:
//!
//! * a random update/refresh sequence applied through the normal engine —
//!   with extra live universe handles held across every step, so each
//!   mutation is forced down the `Arc::make_mut` copy-on-write path —
//!   yields exactly the store a deep-clone reference yields, where the
//!   reference engine is torn down and rebuilt from
//!   [`idl::Value::deep_clone`] after every single operation so no sharing
//!   ever survives;
//! * identical query answers and **byte-identical** serialised snapshots,
//!   across the full evaluation matrix: {1, 4} fixpoint threads ×
//!   {compiled, tree-walking} execution;
//! * snapshot isolation: a universe handle taken *before* a mutation keeps
//!   observing the old contents after it (writers copy, readers don't).

use idl::{Engine, SharingCounters, Store, Value};
use idl_repro as _;
use idl_workload::random::{random_universe, RandomConfig};
use proptest::prelude::*;

/// Query shapes run against both engines after the update sequence:
/// selection, higher-order enumeration, joins, negation, ranges.
const BATTERY: &[&str] = &[
    "?.db0.r0(.a=V)",
    "?.D.R(.a=V)",
    "?.db1.r1(.a=X, .b=Y)",
    "?.db0.r0(.a=V), .db1.r1(.a=V)",
    "?.D.R(.b>0)",
    "?.agg.c0(.val=V)",
    "?.top.only(.val=V)",
];

/// Two strata over the random universe: concrete collectors, then a join
/// and a negated consumer (which forces the stratification).
const VIEW_PROGRAM: &str = "
    .agg.c0(.val=V) <- .db0.r0(.a=V) ;
    .agg.c1(.val=V) <- .db1.r1(.b=V) ;
    .agg.c2(.val=V) <- .db2.r2(.c=V) ;
    .top.join(.val=V) <- .agg.c0(.val=V), .agg.c1(.val=V) ;
    .top.only(.val=V) <- .agg.c0(.val=V), .agg.c1¬(.val=V) ;
";

/// One step of the random workload, rendered to IDL update syntax.
#[derive(Clone, Debug)]
enum Op {
    Insert { db: usize, rel: usize, a: i64, b: i64 },
    Delete { db: usize, rel: usize, cut: i64 },
    Refresh,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0usize..3, -10i64..50, -10i64..50).prop_map(|(db, rel, a, b)| Op::Insert {
            db,
            rel,
            a,
            b
        }),
        (0usize..3, 0usize..3, -10i64..50).prop_map(|(db, rel, cut)| Op::Delete { db, rel, cut }),
        Just(Op::Refresh),
    ]
}

fn apply(e: &mut Engine, op: &Op) {
    match op {
        Op::Insert { db, rel, a, b } => {
            e.update(&format!("?.db{db}.r{rel}+(.a={a}, .b={b})"))
                .unwrap_or_else(|err| panic!("{op:?}: {err}"));
        }
        Op::Delete { db, rel, cut } => {
            e.update(&format!("?.db{db}.r{rel}-(.a>{cut})"))
                .unwrap_or_else(|err| panic!("{op:?}: {err}"));
        }
        Op::Refresh => {
            e.refresh_views().unwrap_or_else(|err| panic!("refresh: {err}"));
        }
    }
}

fn engine_over(universe: Value, threads: usize, compile: bool) -> Engine {
    let store = Store::from_universe(universe).expect("universe is a tuple");
    let mut e = Engine::from_store(store);
    let opts = e.options().rebuild().threads(threads).compile(compile).build();
    e.set_options(opts);
    e.add_rules(VIEW_PROGRAM).expect("view program installs");
    e
}

/// The deep-clone reference: rebuilt from a sharing-free structural copy of
/// the current universe, so no Arc is ever shared across two operations.
fn rebuild_deep(e: &Engine, threads: usize, compile: bool) -> Engine {
    engine_over(e.store().universe().deep_clone(), threads, compile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CoW engine vs deep-clone reference: identical answers and
    /// byte-identical snapshots across the thread × compile matrix.
    #[test]
    fn cow_engine_matches_deep_clone_reference(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..10),
    ) {
        let universe = random_universe(seed, &RandomConfig::default());
        let before = SharingCounters::snapshot();
        let mut final_json: Option<String> = None;

        for compile in [false, true] {
            for threads in [1usize, 4] {
                let mut cow = engine_over(universe.clone(), threads, compile);
                let mut reference = engine_over(universe.deep_clone(), threads, compile);

                // Live handles held across every step force each mutation
                // in `cow` down the copy-on-write path.
                let mut ballast: Vec<Value> = Vec::with_capacity(ops.len());

                for op in &ops {
                    ballast.push(cow.store().universe().clone());
                    apply(&mut cow, op);
                    apply(&mut reference, op);
                    reference = rebuild_deep(&reference, threads, compile);
                }
                cow.refresh_views().unwrap();
                reference.refresh_views().unwrap();

                prop_assert_eq!(
                    cow.store().universe(),
                    reference.store().universe(),
                    "universe diverged ({} threads, compile={}, seed {})",
                    threads, compile, seed
                );
                let cow_json = cow.universe_json().unwrap();
                prop_assert_eq!(
                    &cow_json,
                    &reference.universe_json().unwrap(),
                    "snapshot bytes diverged ({} threads, compile={}, seed {})",
                    threads, compile, seed
                );
                match &final_json {
                    None => final_json = Some(cow_json),
                    Some(first) => prop_assert_eq!(
                        &cow_json, first,
                        "snapshot differs across the eval matrix ({} threads, compile={})",
                        threads, compile
                    ),
                }
                for src in BATTERY {
                    prop_assert_eq!(
                        cow.query(src).unwrap(),
                        reference.query(src).unwrap(),
                        "answers diverged for {} ({} threads, compile={}, seed {})",
                        src, threads, compile, seed
                    );
                }
                drop(ballast);
            }
        }

        // The run must actually have exercised sharing. (Counters are
        // process-global and other tests run concurrently, so only
        // monotone lower bounds are meaningful here.)
        let delta = SharingCounters::snapshot().delta_since(&before);
        prop_assert!(delta.cheap_clones() > 0, "no O(1) clones recorded: {delta:?}");
    }

    /// Snapshot isolation: handles cloned before a mutation keep observing
    /// the pre-mutation universe byte-for-byte.
    #[test]
    fn prior_snapshots_survive_cow_mutation(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 1..10),
    ) {
        let universe = random_universe(seed, &RandomConfig::default());
        let mut cow = engine_over(universe.clone(), 4, true);
        let mut reference = engine_over(universe.deep_clone(), 4, true);

        let mut cow_snaps: Vec<Value> = Vec::new();
        let mut ref_snaps: Vec<Value> = Vec::new();
        for op in &ops {
            cow_snaps.push(cow.store().universe().clone());
            ref_snaps.push(reference.store().universe().deep_clone());
            apply(&mut cow, op);
            apply(&mut reference, op);
            reference = rebuild_deep(&reference, 4, true);
        }

        // Every O(1) snapshot handle still equals the sharing-free copy
        // taken at the same instant, despite every later mutation.
        for (i, (c, r)) in cow_snaps.iter().zip(&ref_snaps).enumerate() {
            prop_assert_eq!(c, r, "snapshot {} mutated retroactively (seed {})", i, seed);
        }
    }
}
