//! Properties of the SQL-sugar front end: whatever it accepts translates
//! to a *valid* IDL statement (executes or fails with a typed error, never
//! panics), and SELECT translations are semantically faithful — the
//! sugared query and a hand-written IDL equivalent agree on a populated
//! engine.

use idl::Engine;
use idl_lang::sugar::parse_sugar;
use idl_repro as _;
use idl_workload::stock::{generate, StockConfig};
use proptest::prelude::*;

fn engine() -> Engine {
    Engine::from_universe(generate(&StockConfig::sized(6, 10)).universe).unwrap()
}

fn columns() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["date", "stkCode", "clsPrice"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_threshold_matches_handwritten_idl(
        threshold in 0i64..400,
        col in columns(),
    ) {
        let mut e = engine();
        let sugar = format!("SELECT {col}, clsPrice FROM euter.r WHERE clsPrice > {threshold}");
        let stmt = parse_sugar(&sugar).unwrap();
        let idl::Statement::Request(req) = stmt else { panic!() };
        let sugared = e.query(&req.to_string()).unwrap();

        // hand-written equivalent: bind both columns, constrain the price
        let by_hand = e
            .query(&format!(
                "?.euter.r(.{col}=A, .clsPrice=B), B > {threshold}"
            ))
            .unwrap();
        prop_assert_eq!(sugared.len(), by_hand.len(), "{}", sugar);
    }

    #[test]
    fn insert_then_delete_is_identity(
        price in 1i64..1000,
        day in 1i64..28,
    ) {
        let mut e = engine();
        let before = e.store().relation("euter", "r").unwrap().clone();
        e.execute_sql(&format!(
            "INSERT INTO euter.r (date, stkCode, clsPrice) VALUES (3/{day}/99, zzz, {price})"
        ))
        .unwrap();
        prop_assert!(e.query("?.euter.r(.stkCode=zzz)").unwrap().is_true());
        e.execute_sql("DELETE FROM euter.r WHERE stkCode = zzz").unwrap();
        prop_assert_eq!(&before, e.store().relation("euter", "r").unwrap());
    }

    #[test]
    fn sugar_never_panics(s in "\\PC{0,80}") {
        let _ = parse_sugar(&s);
    }

    #[test]
    fn sugar_soup_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "DELETE", "AND",
                "euter", ".", "r", ",", "(", ")", "=", ">", "clsPrice", "S", "50", "'x'",
            ]),
            0..16,
        )
    ) {
        let src = parts.join(" ");
        if let Ok(stmt) = parse_sugar(&src) {
            // whatever parses must also execute or error cleanly
            let mut e = engine();
            let _ = e.execute_statement(stmt);
        }
    }
}
