//! Robustness: the front end never panics — arbitrary input produces
//! either a parse or a structured error; and the engine survives
//! executing whatever does parse against a populated universe (any failure
//! is a typed `EngineError`, never a panic, and failed requests leave the
//! universe unchanged).

use idl::Engine;
use idl_lang::{parse_program, parse_statement, sugar::parse_sugar};
use idl_repro as _;
use proptest::prelude::*;

/// Strings biased toward IDL-looking fragments so the parser's deeper
/// states get exercised, not just the lexer's error paths.
fn idl_soup() -> impl Strategy<Value = String> {
    let frag = prop::sample::select(vec![
        "?", ".", ",", ";", "(", ")", "+", "-", "¬", "<-", "->", "=", "<", ">", "<=", ">=", "!=",
        "euter", "r", "X", "S", "stkCode", "hp", "3/3/85", "50", "50.5", "\"str\"", "null", "true",
        "_", "%c\n", " ",
    ]);
    prop::collection::vec(frag, 0..24).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(s in "\\PC{0,60}") {
        let _ = parse_statement(&s);
        let _ = parse_program(&s);
        let _ = parse_sugar(&s);
    }

    #[test]
    fn parser_never_panics_on_idl_soup(s in idl_soup()) {
        let _ = parse_statement(&s);
        let _ = parse_program(&s);
    }

    #[test]
    fn engine_survives_whatever_parses(s in idl_soup()) {
        if parse_program(&s).is_ok() {
            let mut e = Engine::with_stock_universe(vec![
                ("3/3/85", "hp", 50.0),
                ("3/4/85", "ibm", 160.0),
            ]);
            let before = e.store().universe().clone();
            match e.execute(&s) {
                Ok(_) => {}
                Err(_) => {
                    // failed requests must not have mutated the universe
                    prop_assert_eq!(&before, e.store().universe());
                }
            }
        }
    }

    #[test]
    fn errors_carry_positions_within_input(s in idl_soup()) {
        if let Err(e) = parse_statement(&s) {
            prop_assert!(e.span.start <= s.len().saturating_add(1));
            let _ = e.to_string();
            let _ = e.line_col(&s);
        }
    }
}
