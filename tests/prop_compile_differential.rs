//! Differential battery for the physical plan IR (DESIGN.md "Plan IR and
//! plan cache").
//!
//! Compilation is a *representation* change, never a semantic one:
//!
//! * materialising any view program from compiled plans yields exactly the
//!   universe the tree-walking interpreter yields, on hundreds of random
//!   universes, at 1 and 4 fixpoint workers — for a wide single-stratum
//!   recursive program and for a negation-stratified two-layer program;
//! * the §4 query battery sees identical answer sets whether each query is
//!   compiled or tree-walked;
//! * `FixpointStats` proves each rule body is compiled at most once per
//!   refresh, however many fixpoint iterations run;
//! * compiled and interpreted refreshes of the same engine produce
//!   byte-identical persisted snapshots.

use idl_eval::rules::RuleEngine;
use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_program, parse_statement, Statement};
use idl_repro as _;
use idl_storage::Store;
use idl_workload::random::{random_store, RandomConfig};
use idl_workload::stock::{generate_sharded_store, sharded_union_rules, ShardedStockConfig};
use proptest::prelude::*;

/// §4-style query shapes run against the materialised stores: selection,
/// higher-order enumeration, joins, negation, ranges.
const BATTERY: &[&str] = &[
    "?.db0.r0(.a=V)",
    "?.D.R(.a=V)",
    "?.D.R(.A=7)",
    "?.db1.r1(.a=X, .b=Y)",
    "?.db0.r0(.a=V), .db1.r1(.a=V)",
    "?.db0.r0(.a=V), .db0.r0¬(.b=V)",
    "?.D.R(.a>0)",
    "?.db2.r2(.a>0, .a<20)",
    "?.X.Y(.c=V), X != db0",
    "?.agg.A(.val=V)",
];

/// One wide stratum: wildcard bodies make every rule's input overlap every
/// head, so all five rules iterate together — the shape where compiled
/// plans are reused across the most iterations.
const WIDE_RECURSIVE: &str = "
    .agg.pa(.db=D, .val=V) <- .D.R(.a=V) ;
    .agg.pb(.db=D, .val=V) <- .D.R(.b=V) ;
    .agg.pc(.db=D, .val=V) <- .D.R(.c=V) ;
    .agg.pd(.db=D, .val=V) <- .D.R(.d=V) ;
    .agg.ab(.val=V) <- .agg.pa(.val=V), .agg.pb(.val=V) ;
";

/// Two strata with concrete bodies: six independent collectors, then four
/// consumers including a negated subgoal and a comparison constraint.
const STRATIFIED_NEGATION: &str = "
    .agg.a00(.val=V) <- .db0.r0(.a=V) ;
    .agg.a01(.val=V) <- .db0.r1(.b=V) ;
    .agg.a02(.val=V) <- .db1.r0(.c=V) ;
    .agg.a03(.val=V) <- .db1.r1(.a=V) ;
    .agg.a04(.val=V) <- .db2.r0(.b=V) ;
    .agg.a05(.val=V) <- .db2.r2(.d=V) ;
    .top.join(.val=V) <- .agg.a00(.val=V), .agg.a03(.val=V) ;
    .top.only0(.val=V) <- .agg.a00(.val=V), .agg.a04¬(.val=V) ;
    .top.large(.val=V) <- .agg.a01(.val=V), V > 5 ;
    .top.pair(.x=V, .y=W) <- .agg.a02(.val=V), .agg.a05(.val=W) ;
";

fn rule_engine(src: &str) -> RuleEngine {
    let rules: Vec<_> = parse_program(src)
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            other => panic!("expected a rule, got {other}"),
        })
        .collect();
    RuleEngine::new(rules).unwrap()
}

fn answers(store: &Store, src: &str, compile: bool) -> idl_eval::AnswerSet {
    let Statement::Request(req) = parse_statement(src).unwrap() else { panic!("{src}") };
    Evaluator::new(store, EvalOptions::default().with_compile(compile))
        .query(&req)
        .unwrap_or_else(|e| panic!("{src} (compile={compile}): {e}"))
}

/// Materialises `program` over the seed's universe, compiled or not.
fn materialized(seed: u64, program: &RuleEngine, threads: usize, compile: bool) -> Store {
    let mut store = random_store(seed, &RandomConfig::default());
    let opts = EvalOptions::default().with_threads(threads).with_compile(compile);
    program
        .materialize(&mut store, opts)
        .unwrap_or_else(|e| panic!("{threads} threads, compile={compile}: {e}"));
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_fixpoint_matches_tree_walk(seed in 0u64..1_000_000) {
        for program_src in [WIDE_RECURSIVE, STRATIFIED_NEGATION] {
            let program = rule_engine(program_src);
            let reference = materialized(seed, &program, 1, false);
            for threads in [1usize, 4] {
                let compiled = materialized(seed, &program, threads, true);
                prop_assert_eq!(
                    reference.universe(),
                    compiled.universe(),
                    "universe diverged at {} threads (seed {})",
                    threads,
                    seed
                );
            }
            for src in BATTERY {
                prop_assert_eq!(
                    answers(&reference, src, false),
                    answers(&reference, src, true),
                    "answers diverged for {} (seed {})",
                    src,
                    seed
                );
            }
        }
    }

    #[test]
    fn compile_stats_are_coherent(seed in 0u64..1_000_000) {
        let program = rule_engine(STRATIFIED_NEGATION);

        let mut compiled = random_store(seed, &RandomConfig::default());
        let c_stats = program
            .materialize(&mut compiled, EvalOptions::default().with_threads(1).with_compile(true))
            .unwrap();
        // One compile per rule body per refresh, independent of how many
        // fixpoint iterations or rule evaluations ran.
        prop_assert_eq!(c_stats.plans_compiled, program.rules().len());
        prop_assert!(c_stats.rule_evals >= c_stats.plans_compiled);
        // No memoized cache was supplied, so no hit/miss traffic.
        prop_assert_eq!(c_stats.plan_cache_hits, 0);
        prop_assert_eq!(c_stats.plan_cache_misses, 0);

        let mut interp = random_store(seed, &RandomConfig::default());
        let i_stats = program
            .materialize(&mut interp, EvalOptions::default().with_threads(1).with_compile(false))
            .unwrap();
        prop_assert_eq!(i_stats.plans_compiled, 0, "tree walk never compiles");
        prop_assert_eq!(c_stats.facts_added, i_stats.facts_added);
        prop_assert_eq!(compiled.universe(), interp.universe());
    }
}

/// Satellite determinism check: a compiled refresh and an interpreted
/// refresh of the same universe persist byte-identical snapshots — the
/// acceptance bar for the whole-pipeline refactor.
#[test]
fn compiled_and_interpreted_snapshots_are_byte_identical() {
    let cfg = ShardedStockConfig::sized(8, 4, 10);
    let rules = sharded_union_rules(&cfg);
    let mut reference: Option<String> = None;
    for compile in [false, true, true, false] {
        for threads in [1usize, 4] {
            let mut engine = idl::Engine::from_store(generate_sharded_store(&cfg));
            let opts = engine.options().rebuild().threads(threads).compile(compile).build();
            engine.set_options(opts);
            engine.add_rules(&rules).unwrap();
            engine.refresh_views().unwrap();
            let json = idl_storage::persist::to_json(engine.store()).unwrap();
            match &reference {
                None => reference = Some(json),
                Some(r) => {
                    assert_eq!(&json, r, "snapshot diverged (compile={compile}, threads={threads})")
                }
            }
        }
    }
}
