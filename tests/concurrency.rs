//! Concurrency guarantees: the store is `Send + Sync` for shared read
//! access (index/statistics caches are internally synchronised), so one
//! universe can serve parallel query threads.

use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_statement, Statement};
use idl_repro as _;
use idl_storage::Store;
use idl_workload::stock::{generate_store, StockConfig};
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn store_and_values_are_send_sync() {
    assert_send_sync::<Store>();
    assert_send_sync::<idl_object::Value>();
    assert_send_sync::<idl_eval::AnswerSet>();
}

#[test]
fn parallel_readers_share_one_store() {
    let store = Arc::new(generate_store(&StockConfig::sized(8, 20)));
    let queries = [
        "?.euter.r(.stkCode=stk001, .clsPrice=P)",
        "?.chwab.r(.S>0)",
        "?.ource.S(.clsPrice>50)",
        "?.X.Y(.clsPrice=P)",
    ];
    // Reference answers single-threaded.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let Statement::Request(req) = parse_statement(q).unwrap() else { panic!() };
            Evaluator::with_defaults(&store).query(&req).unwrap()
        })
        .collect();

    let mut handles = Vec::new();
    for _round in 0..4 {
        for (i, q) in queries.iter().enumerate() {
            let store = Arc::clone(&store);
            let q = q.to_string();
            let expect = expected[i].clone();
            handles.push(std::thread::spawn(move || {
                let Statement::Request(req) = parse_statement(&q).unwrap() else { panic!() };
                // half the threads stress the index-cache path
                let opts = if i % 2 == 0 {
                    EvalOptions::default()
                } else {
                    EvalOptions::naive()
                };
                let got = Evaluator::new(&store, opts).query(&req).unwrap();
                assert_eq!(got, expect, "{q}");
            }));
        }
    }
    for h in handles {
        h.join().expect("reader thread panicked");
    }
}
