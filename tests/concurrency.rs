//! Concurrency guarantees: the store is `Send + Sync` for shared read
//! access (index/statistics caches are internally synchronised), so one
//! universe can serve parallel query threads.

use idl::{Engine, EngineOptions};
use idl_eval::rules::RuleEngine;
use idl_eval::{EvalOptions, Evaluator};
use idl_lang::{parse_program, parse_statement, Statement};
use idl_repro as _;
use idl_storage::Store;
use idl_workload::stock::{
    generate_sharded_store, generate_store, shard_db, sharded_union_rules, ShardedStockConfig,
    StockConfig,
};
use std::sync::{Arc, RwLock};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn store_and_values_are_send_sync() {
    assert_send_sync::<Store>();
    assert_send_sync::<idl_object::Value>();
    assert_send_sync::<idl_eval::AnswerSet>();
}

#[test]
fn parallel_readers_share_one_store() {
    let store = Arc::new(generate_store(&StockConfig::sized(8, 20)));
    let queries = [
        "?.euter.r(.stkCode=stk001, .clsPrice=P)",
        "?.chwab.r(.S>0)",
        "?.ource.S(.clsPrice>50)",
        "?.X.Y(.clsPrice=P)",
    ];
    // Reference answers single-threaded.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let Statement::Request(req) = parse_statement(q).unwrap() else { panic!() };
            Evaluator::with_defaults(&store).query(&req).unwrap()
        })
        .collect();

    let mut handles = Vec::new();
    for _round in 0..4 {
        for (i, q) in queries.iter().enumerate() {
            let store = Arc::clone(&store);
            let q = q.to_string();
            let expect = expected[i].clone();
            handles.push(std::thread::spawn(move || {
                let Statement::Request(req) = parse_statement(&q).unwrap() else { panic!() };
                // half the threads stress the index-cache path
                let opts = if i % 2 == 0 { EvalOptions::default() } else { EvalOptions::naive() };
                let got = Evaluator::new(&store, opts).query(&req).unwrap();
                assert_eq!(got, expect, "{q}");
            }));
        }
    }
    for h in handles {
        h.join().expect("reader thread panicked");
    }
}

/// A parallel fixpoint writer (which spawns its own worker pool inside the
/// write lock) racing reader threads on the same shared store. Because
/// re-materialising a set-headed program is idempotent, every read-locked
/// observation must equal the reference contents, no matter how the
/// refreshes interleave with the reads.
#[test]
fn parallel_refresh_races_concurrent_readers() {
    let cfg = ShardedStockConfig::sized(6, 3, 8);
    let rules: Vec<_> = parse_program(&sharded_union_rules(&cfg))
        .unwrap()
        .into_iter()
        .map(|s| match s {
            Statement::Rule(r) => r,
            other => panic!("expected a rule, got {other}"),
        })
        .collect();
    let program = Arc::new(RuleEngine::new(rules).unwrap());
    let opts = EvalOptions::default().with_threads(4);

    let mut store = generate_sharded_store(&cfg);
    program.materialize(&mut store, opts).unwrap();
    let reference = store.universe().clone();
    let shared = Arc::new(RwLock::new(store));

    let queries = ["?.dbU.q(.stk=S, .clsPrice=P)", "?.dbHi.R(.stk=S)", "?.feed02.r(.clsPrice>0)"];
    let expected: Vec<_> = {
        let guard = shared.read().unwrap();
        queries
            .iter()
            .map(|q| {
                let Statement::Request(req) = parse_statement(q).unwrap() else { panic!() };
                Evaluator::with_defaults(&guard).query(&req).unwrap()
            })
            .collect()
    };

    let mut handles = Vec::new();
    for _ in 0..2 {
        let shared = Arc::clone(&shared);
        let program = Arc::clone(&program);
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let mut guard = shared.write().unwrap();
                // nested parallelism: the fixpoint's own workers run while
                // this thread holds the write lock
                program.materialize(&mut guard, opts).unwrap();
            }
        }));
    }
    for (i, q) in queries.iter().enumerate() {
        let shared = Arc::clone(&shared);
        let q = q.to_string();
        let expect = expected[i].clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let guard = shared.read().unwrap();
                let Statement::Request(req) = parse_statement(&q).unwrap() else { panic!() };
                let got = Evaluator::with_defaults(&guard).query(&req).unwrap();
                assert_eq!(got, expect, "{q}");
            }
        }));
    }
    for h in handles {
        h.join().expect("racing thread panicked");
    }
    assert_eq!(shared.read().unwrap().universe(), &reference);
}

/// Incremental (`materialize_masked`) refresh at 4 worker threads after
/// base deletions: the masked parallel re-derivation must propagate the
/// deletions through both strata and land on exactly the universe a
/// sequential from-scratch rebuild produces.
#[test]
fn incremental_masked_refresh_under_parallelism_propagates_deletions() {
    let cfg = ShardedStockConfig::sized(6, 3, 8);
    let rules = sharded_union_rules(&cfg);
    let deletions = [
        // one stock out of shard 0, every quote out of shard 1
        "?.feed00.r-(.stkCode=f00stk000)",
        "?.feed01.r-(.clsPrice>0)",
    ];

    let mut inc = Engine::from_store(generate_sharded_store(&cfg));
    inc.set_options(
        EngineOptions {
            auto_refresh: false,
            incremental_refresh: true,
            ..EngineOptions::default()
        }
        .rebuild()
        .threads(4)
        // this test exercises the masked drop-and-rebuild repair, so keep
        // write-path maintenance (and its delta-repair) out of the way
        .maintain(false)
        .build(),
    );
    inc.add_rules(&rules).unwrap();
    inc.refresh_views().unwrap();
    let union_before = inc.store().relation("dbU", "q").unwrap().len();

    for d in &deletions {
        inc.update(d).unwrap();
    }
    let stats = inc.refresh_views_if_stale().unwrap();
    assert!(!stats.strata.is_empty(), "base deletions must dirty the views");
    assert!(
        stats.strata.iter().any(|s| s.workers > 1),
        "masked refresh should use the worker pool"
    );

    // deletions propagated into the union…
    let union_after = inc.store().relation("dbU", "q").unwrap().len();
    assert_eq!(union_after, union_before - 8 - 24, "8 quotes of f00stk000, all 24 of feed01");
    // …and across the stratum boundary
    assert!(inc.store().relation("dbHi", "h1").unwrap().is_empty());

    // sequential from-scratch rebuild over identically edited base data
    let mut full = Engine::from_store(generate_sharded_store(&cfg));
    full.set_options(EngineOptions::builder().threads(1).build());
    for d in &deletions {
        full.update(d).unwrap();
    }
    full.add_rules(&rules).unwrap();
    full.refresh_views().unwrap();

    assert_eq!(
        inc.store().universe(),
        full.store().universe(),
        "masked parallel refresh must equal a sequential full rebuild"
    );
    // sanity: untouched shards kept their maxima
    for si in [0usize, 2, 3, 4, 5] {
        let db = shard_db(si);
        assert!(!inc.store().relation(&db, "r").unwrap().is_empty());
        assert!(!inc.store().relation("dbHi", &format!("h{si}")).unwrap().is_empty());
    }
}
