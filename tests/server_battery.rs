//! The server battery: N concurrent client sessions against one
//! `idl-server`, checked for oracle equivalence and operational
//! robustness.
//!
//! * **Oracle equivalence** — 8 sessions issue a mixed read/update load
//!   concurrently; the final universe must be byte-identical to a
//!   single-threaded engine replaying the same updates. The per-client
//!   workloads touch disjoint keys, so the final state is
//!   order-independent and the comparison is exact.
//! * **Snapshot concurrency** — reads must keep completing *while* a
//!   view refresh holds the writer (the published-snapshot discipline).
//! * **Session isolation** — a mid-stream disconnect or an oversized
//!   frame kills its own session with a clean error frame; concurrent
//!   sessions and the engine are unaffected.
//! * **Durability over the wire** — updates through the server land in
//!   the operation log and survive a restart; a poisoned durable
//!   backend answers with clean `E-POISONED` frames while reads keep
//!   serving the last acknowledged snapshot.
//!
//! The fixpoint worker count follows `IDL_TEST_THREADS` (the CI matrix
//! runs 1 and 4), exercising the server over both the sequential and
//! parallel refresh paths.

use idl::{Backend, DurableEngine, Engine, EngineOptions, FaultPlan, SimVfs, Vfs};
use idl_server::{
    protocol, serve, Client, ServeMode, ServerConfig, ServerHandle, ServerStatsSnapshot,
    WireRequest, WireResponse,
};
use idl_storage::codec;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 12;

const RULES: &str = "
    .v.all(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;
    .v.byclient(.c=C) <- .db.r(.c=C, .k=K) ;
";

fn serve_engine(setup: impl FnOnce(&mut Engine), cfg: ServerConfig) -> ServerHandle {
    let mut engine = Engine::new();
    setup(&mut engine);
    serve(Box::new(engine), cfg).expect("server starts")
}

#[test]
fn eight_concurrent_sessions_match_single_threaded_oracle() {
    let handle = serve_engine(
        |e| {
            e.add_rules(RULES).unwrap();
        },
        ServerConfig::default(),
    );
    let addr = handle.local_addr();

    let workers: Vec<_> = (1..=CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for k in 0..OPS_PER_CLIENT {
                    let out = client.update(&format!("?.db.r+(.c={c}, .k={k})")).unwrap();
                    assert_eq!(out.stats().unwrap().inserted, 1, "client {c} op {k}");
                    // Read-your-writes: the snapshot published with the
                    // ack already contains this client's whole history,
                    // in base *and* view within one snapshot (the two
                    // atoms evaluate against the same published handle).
                    let answers = client
                        .query(&format!("?.db.r(.c={c}, .k=K), .v.all(.c={c}, .k=K)"))
                        .unwrap();
                    assert_eq!(answers.len(), k + 1, "client {c} after op {k}");
                    match k % 4 {
                        0 => {
                            client.refresh_views().unwrap();
                        }
                        1 => client.ping().unwrap(),
                        _ => {}
                    }
                }
                let stats = client.stats().unwrap();
                assert_eq!(stats.session.errors, 0);
                assert!(stats.session.requests >= (2 * OPS_PER_CLIENT) as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panics propagate");
    }

    let served = Client::connect(addr).unwrap().dump_universe().unwrap();

    // single-threaded oracle: same updates, any order (disjoint keys)
    let mut oracle = Engine::new();
    oracle.add_rules(RULES).unwrap();
    for c in 1..=CLIENTS {
        for k in 0..OPS_PER_CLIENT {
            oracle.update(&format!("?.db.r+(.c={c}, .k={k})")).unwrap();
        }
    }
    oracle.refresh_views().unwrap();
    assert_eq!(served, oracle.universe_json().unwrap(), "served state diverged from oracle");

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.sessions_active, 0);
    assert!(final_stats.sessions_opened >= CLIENTS as u64);
    assert_eq!(final_stats.errors, 0);
    assert!(final_stats.writes >= (CLIENTS * OPS_PER_CLIENT) as u64);
    assert!(final_stats.reads >= (CLIENTS * OPS_PER_CLIENT) as u64);
}

#[test]
fn snapshot_reads_proceed_while_a_refresh_is_in_flight() {
    // enough facts and strata that a from-scratch refresh takes real time
    let handle = serve_engine(
        |e| {
            let mut src = String::new();
            for c in 0..5 {
                for k in 0..400 {
                    src.push_str(&format!("?.db.r+(.c={c}, .k={k}) ;\n"));
                }
            }
            e.execute(&src).unwrap();
            e.add_rules(
                "
                .v.a(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;
                .v.b(.c=C, .k=K) <- .v.a(.c=C, .k=K) ;
                .v.c(.k=K) <- .v.b(.c=C, .k=K) ;
                ",
            )
            .unwrap();
        },
        ServerConfig::default(),
    );
    let addr = handle.local_addr();

    let refreshing = Arc::new(AtomicBool::new(true));
    let refresher = {
        let refreshing = Arc::clone(&refreshing);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut windows = Vec::new();
            for _ in 0..3 {
                let t0 = Instant::now();
                client.refresh_views().unwrap();
                windows.push((t0, Instant::now()));
            }
            refreshing.store(false, Ordering::SeqCst);
            windows
        })
    };

    let mut client = Client::connect(addr).unwrap();
    let mut completions = Vec::new();
    while refreshing.load(Ordering::SeqCst) {
        let answers = client.query("?.db.r(.c=1, .k=K)").unwrap();
        assert_eq!(answers.len(), 400);
        completions.push(Instant::now());
    }
    let windows = refresher.join().unwrap();

    let during_refresh = completions
        .iter()
        .filter(|t| windows.iter().any(|(t0, t1)| *t0 < **t && **t < *t1))
        .count();
    assert!(
        during_refresh > 0,
        "no snapshot read completed inside any refresh window \
         ({} reads total, {} refresh windows)",
        completions.len(),
        windows.len(),
    );
    handle.shutdown();
}

#[test]
fn concurrent_reads_stay_on_published_snapshot_during_seminaive_refresh() {
    // The same slow-refresh shape as above, plus an oracle replica per
    // committed state: while the writer runs a semi-naive refresh for an
    // update, every concurrent read must serve bytes equal to *some*
    // fully-published state — never a torn universe with one view layer
    // refreshed and the next not.
    let mut seed_src = String::new();
    for c in 0..5 {
        for k in 0..400 {
            seed_src.push_str(&format!("?.db.r+(.c={c}, .k={k}) ;\n"));
        }
    }
    let layered = "
        .v.a(.c=C, .k=K) <- .db.r(.c=C, .k=K) ;
        .v.b(.c=C, .k=K) <- .v.a(.c=C, .k=K) ;
        .v.c(.k=K) <- .v.b(.c=C, .k=K) ;
    ";
    let updates: Vec<String> = (0..3).map(|i| format!("?.db.r+(.c=9, .k={})", 9990 + i)).collect();

    // Oracle JSONs for state 0 (seed only) through state 3 (all updates),
    // each with views fully refreshed.
    let mut oracle = Engine::new();
    oracle.execute(&seed_src).unwrap();
    oracle.add_rules(layered).unwrap();
    oracle.refresh_views().unwrap();
    let mut states = vec![oracle.universe_json().unwrap()];
    for u in &updates {
        oracle.update(u).unwrap();
        oracle.refresh_views().unwrap();
        states.push(oracle.universe_json().unwrap());
    }

    let handle = serve_engine(
        |e| {
            // This test pins the *semi-naive refresh* publication window,
            // so updates must pay a refresh rather than be absorbed by
            // write-path maintenance (which shrinks the window to almost
            // nothing and makes the timing assertions vacuous).
            let opts = e.options().rebuild().maintain(false).build();
            e.set_options(opts);
            e.execute(&seed_src).unwrap();
            e.add_rules(layered).unwrap();
        },
        ServerConfig::default(),
    );
    let addr = handle.local_addr();

    // the first published snapshot is exactly state 0
    let mut reader = Client::connect(addr).unwrap();
    assert_eq!(reader.dump_universe().unwrap(), states[0], "initial publish");

    let updating = Arc::new(AtomicBool::new(true));
    let updater = {
        let updating = Arc::clone(&updating);
        let updates = updates.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut windows = Vec::new();
            for (i, u) in updates.iter().enumerate() {
                let t0 = Instant::now();
                client.update(u).unwrap();
                windows.push((t0, Instant::now()));
                // Read-your-writes after republish: the snapshot that
                // acknowledged this update already serves the new fact
                // through every view layer.
                let k = 9990 + i;
                assert!(client.query(&format!("?.v.c(.k={k})")).unwrap().is_true());
            }
            updating.store(false, Ordering::SeqCst);
            windows
        })
    };

    let mut dumps = Vec::new();
    while updating.load(Ordering::SeqCst) {
        let t0 = Instant::now();
        let json = reader.dump_universe().unwrap();
        dumps.push((t0, Instant::now(), json));
    }
    let windows = updater.join().unwrap();

    for (i, (_, _, json)) in dumps.iter().enumerate() {
        assert!(
            states.contains(json),
            "read {i} served bytes matching no fully-published state (torn snapshot)"
        );
    }
    // At least one read that ran entirely inside an update window served
    // the *previous* published state: reads neither block on the writer's
    // semi-naive refresh nor observe its in-progress derivation.
    let stale_reads_in_window = dumps
        .iter()
        .filter(|(r0, r1, json)| {
            windows
                .iter()
                .enumerate()
                .any(|(w, (t0, t1))| t0 < r0 && r1 < t1 && **json == states[w])
        })
        .count();
    assert!(
        stale_reads_in_window > 0,
        "no read inside any refresh window served the last published snapshot \
         ({} reads, {} windows)",
        dumps.len(),
        windows.len(),
    );
    // After the last republish every reader sees the final state.
    assert_eq!(reader.dump_universe().unwrap(), states[3], "final publish");
    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_with_read_your_writes() {
    let handle = serve_engine(
        |e| {
            e.add_rules(RULES).unwrap();
        },
        ServerConfig { mode: ServeMode::Event, ..ServerConfig::default() },
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Fire the whole interleaved update/query workload without reading a
    // single reply: every frame sits in the session's pipeline.
    const N: usize = 16;
    for k in 0..N {
        client
            .send_request(&WireRequest::Update { src: format!("?.db.r+(.c=7, .k={k})") })
            .unwrap();
        client.send_request(&WireRequest::Query { src: "?.db.r(.c=7, .k=K)".into() }).unwrap();
    }
    // Replies come back strictly in request order, and each pipelined
    // query observes every update that preceded it in the pipeline
    // (read-your-writes across the whole burst).
    for k in 0..N {
        match client.read_reply().unwrap() {
            WireResponse::Outcomes(o) => {
                assert_eq!(o[0].stats().unwrap().inserted, 1, "update {k}")
            }
            other => panic!("reply {k}: expected the update's Outcomes, got {other:?}"),
        }
        match client.read_reply().unwrap() {
            WireResponse::Answers(a) => {
                assert_eq!(a.len(), k + 1, "query pipelined after update {k}")
            }
            other => panic!("reply {k}: expected the query's Answers, got {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.session.errors, 0);
    assert_eq!(stats.session.requests, 2 * N as u64);
    drop(client);
    let final_stats = handle.shutdown();
    assert_eq!(final_stats.errors, 0);
}

/// Pipelined-writer oracle leg, shared by both serve modes: every client
/// bursts its whole update workload down the pipe before collecting a
/// single ack, so concurrent updates pile up at the writer (in event
/// mode, coalescing into group commits). The final universe must still
/// be byte-identical to the single-threaded oracle.
fn pipelined_writers_match_oracle(mode: ServeMode) -> ServerStatsSnapshot {
    let handle = serve_engine(
        |e| {
            e.add_rules(RULES).unwrap();
        },
        ServerConfig { mode, ..ServerConfig::default() },
    );
    let addr = handle.local_addr();

    let workers: Vec<_> = (1..=CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for k in 0..OPS_PER_CLIENT {
                    client
                        .send_request(&WireRequest::Update {
                            src: format!("?.db.r+(.c={c}, .k={k})"),
                        })
                        .unwrap();
                }
                for k in 0..OPS_PER_CLIENT {
                    match client.read_reply().unwrap() {
                        WireResponse::Outcomes(o) => {
                            assert_eq!(o[0].stats().unwrap().inserted, 1, "client {c} op {k}")
                        }
                        other => panic!("client {c} op {k}: expected Outcomes, got {other:?}"),
                    }
                }
                // Read-your-writes across the pipeline boundary: a query
                // issued after the last ack sees the whole burst, in base
                // and view within one snapshot.
                let answers =
                    client.query(&format!("?.db.r(.c={c}, .k=K), .v.all(.c={c}, .k=K)")).unwrap();
                assert_eq!(answers.len(), OPS_PER_CLIENT, "client {c} read-your-writes");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panics propagate");
    }

    let served = Client::connect(addr).unwrap().dump_universe().unwrap();
    let mut oracle = Engine::new();
    oracle.add_rules(RULES).unwrap();
    for c in 1..=CLIENTS {
        for k in 0..OPS_PER_CLIENT {
            oracle.update(&format!("?.db.r+(.c={c}, .k={k})")).unwrap();
        }
    }
    oracle.refresh_views().unwrap();
    assert_eq!(
        served,
        oracle.universe_json().unwrap(),
        "pipelined {mode} state diverged from oracle"
    );

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.errors, 0);
    assert_eq!(final_stats.sessions_active, 0);
    assert!(final_stats.writes >= (CLIENTS * OPS_PER_CLIENT) as u64);
    final_stats
}

#[test]
fn pipelined_writers_match_oracle_in_event_mode() {
    let stats = pipelined_writers_match_oracle(ServeMode::Event);
    // Every update travelled through the group-commit path; the batch
    // count tells how much coalescing the schedule happened to yield.
    assert_eq!(stats.group_commit_records, (CLIENTS * OPS_PER_CLIENT) as u64);
    assert!(stats.group_commits >= 1);
    assert!(stats.group_commits <= stats.group_commit_records);
}

#[test]
fn pipelined_writers_match_oracle_in_threaded_mode() {
    let stats = pipelined_writers_match_oracle(ServeMode::Threaded);
    // The reference mode has no write batching at all.
    assert_eq!(stats.group_commits, 0);
}

#[test]
fn oversized_response_degrades_to_error_frame_in_event_mode() {
    let cfg = ServerConfig { mode: ServeMode::Event, max_frame: 1024, ..ServerConfig::default() };
    let handle = serve_engine(
        |e| {
            let mut src = String::new();
            for k in 0..200 {
                src.push_str(&format!("?.db.big+(.k={k}, .pad=xxxxxxxxxxxxxxxxxxxx{k}) ;\n"));
            }
            e.execute(&src).unwrap();
        },
        cfg,
    );
    let mut client = Client::connect_with(handle.local_addr(), 1024, None).unwrap();
    // The universe dump cannot fit one frame: the response degrades to a
    // clean E-TOO-LARGE error frame instead of killing the session.
    let err = client.dump_universe().unwrap_err();
    assert_eq!(err.code(), Some(protocol::E_TOO_LARGE), "{err}");
    client.ping().unwrap();
    assert!(client.query("?.db.big(.k=1, .pad=P)").unwrap().is_true());
    let final_stats = handle.shutdown();
    assert!(final_stats.errors >= 1);
    assert_eq!(final_stats.sessions_active, 0);
}

#[test]
fn idle_sessions_are_reaped_in_event_mode() {
    let cfg = ServerConfig {
        mode: ServeMode::Event,
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = serve_engine(
        |e| {
            e.add_rules(RULES).unwrap();
        },
        cfg,
    );
    let mut idle = Client::connect(handle.local_addr()).unwrap();
    idle.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    // The reaper closed the quiet session; the next call finds EOF.
    assert!(idle.ping().is_err(), "idle session survived past its deadline");
    let final_stats = handle.shutdown();
    assert!(final_stats.sessions_reaped >= 1);
    assert_eq!(final_stats.sessions_active, 0);
}

/// Raw-socket handshake: exchange magic, consume the greeting frame.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(protocol::MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();
    assert_eq!(&magic, protocol::MAGIC);
    let greeting = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
    assert!(String::from_utf8(greeting).unwrap().contains("Pong"));
    stream
}

#[test]
fn disconnects_and_oversized_frames_do_not_poison_other_sessions() {
    let cfg = ServerConfig { max_frame: 2048, ..ServerConfig::default() };
    let handle = serve_engine(
        |e| {
            e.add_rules(RULES).unwrap();
        },
        cfg,
    );
    let addr = handle.local_addr();

    // an honest session, kept open across both abuse cases
    let mut honest = Client::connect_with(addr, 2048, None).unwrap();
    honest.update("?.db.r+(.c=1, .k=1)").unwrap();

    // abuse #1: a frame header promising 100 bytes, then a disconnect
    {
        let mut stream = raw_handshake(addr);
        let mut partial = Vec::new();
        partial.extend_from_slice(&100u32.to_le_bytes());
        partial.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        partial.extend_from_slice(b"tiny");
        stream.write_all(&partial).unwrap();
        drop(stream); // mid-frame EOF
    }

    // abuse #2: an oversized frame — rejected with a clean error frame
    {
        let mut stream = raw_handshake(addr);
        protocol::write_frame(&mut stream, &vec![b'x'; 4096], 1 << 20).unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
        let resp: idl_server::WireResponse =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        match resp {
            WireResponse::Error { code, .. } => assert_eq!(code, protocol::E_TOO_LARGE),
            other => panic!("expected an E-TOO-LARGE error frame, got {other:?}"),
        }
    }

    // abuse #3: a valid frame that is not valid JSON — error, session lives
    {
        let mut stream = raw_handshake(addr);
        protocol::write_frame(&mut stream, b"not json at all", 2048).unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
        assert!(std::str::from_utf8(&payload).unwrap().contains(protocol::E_PROTO));
        // same socket still answers a well-formed request afterwards
        protocol::write_frame(&mut stream, b"\"Ping\"", 2048).unwrap();
        let pong = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
        assert!(String::from_utf8(pong).unwrap().contains("Pong"));
    }

    // the honest session and the engine survived all of it
    honest.update("?.db.r+(.c=1, .k=2)").unwrap();
    let answers = honest.query("?.db.r(.c=1, .k=K), .v.all(.c=1, .k=K)").unwrap();
    assert_eq!(answers.len(), 2);
    let stats = honest.stats().unwrap();
    assert!(stats.server.frames_rejected >= 2);

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.sessions_active, 0);
}

/// Old-client pin: a peer speaking the v1 handshake must see, byte for
/// byte, what it saw before the binary codec existed — the v1 magic
/// echoed, the exact `"Pong"` greeting frame, and `DumpUniverse`
/// replies as plain JSON with no binary marker.
fn v1_clients_see_the_legacy_wire_bytes(mode: ServeMode) {
    let handle = serve_engine(
        |e| {
            e.execute("?.db.r+(.a=1) ; ?.db.r+(.a=2)").unwrap();
        },
        ServerConfig { mode, ..ServerConfig::default() },
    );
    let addr = handle.local_addr();
    let mut oracle = Engine::new();
    oracle.execute("?.db.r+(.a=1) ; ?.db.r+(.a=2)").unwrap();
    let want = oracle.universe_json().unwrap();

    // raw socket: the greeting is pinned to the pre-codec bytes
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(protocol::MAGIC).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();
    assert_eq!(&magic, protocol::MAGIC, "v1 client must get the v1 magic back");
    let greeting = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
    assert_eq!(greeting, b"\"Pong\"", "v1 greeting changed");
    protocol::write_frame(&mut stream, b"\"DumpUniverse\"", 1 << 20).unwrap();
    let payload = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
    assert_ne!(payload[0], protocol::BINARY_UNIVERSE_MARKER, "v1 session got a binary frame");
    let resp: WireResponse = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    match resp {
        WireResponse::Universe { json } => assert_eq!(json, want),
        other => panic!("expected a JSON Universe, got {other:?}"),
    }
    drop(stream);

    // the convenience constructor pins the same behaviour
    let mut old = Client::connect_json(addr).unwrap();
    assert!(!old.is_binary());
    assert_eq!(old.dump_universe().unwrap(), want);
    handle.shutdown();
}

#[test]
fn v1_clients_see_the_legacy_wire_bytes_in_threaded_mode() {
    v1_clients_see_the_legacy_wire_bytes(ServeMode::Threaded);
}

#[test]
fn v1_clients_see_the_legacy_wire_bytes_in_event_mode() {
    v1_clients_see_the_legacy_wire_bytes(ServeMode::Event);
}

/// v2 negotiation: the server echoes the v2 magic, greets with `Hello`
/// advertising both codecs, and ships `DumpUniverse` as a marker-tagged
/// binary frame that decodes to the same universe a v1 session gets.
fn v2_handshake_negotiates_binary_universes(mode: ServeMode) {
    let handle = serve_engine(
        |e| {
            e.execute("?.db.r+(.a=1) ; ?.db.r+(.a=2)").unwrap();
        },
        ServerConfig { mode, ..ServerConfig::default() },
    );
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(protocol::MAGIC_V2).unwrap();
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic).unwrap();
    assert_eq!(&magic, protocol::MAGIC_V2);
    let greeting = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
    let hello: WireResponse =
        serde_json::from_str(std::str::from_utf8(&greeting).unwrap()).unwrap();
    match hello {
        WireResponse::Hello { codecs } => {
            assert!(codecs.iter().any(|c| c == "json"), "{codecs:?}");
            assert!(codecs.iter().any(|c| c == "binary"), "{codecs:?}");
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    protocol::write_frame(&mut stream, b"\"DumpUniverse\"", 1 << 20).unwrap();
    let payload = protocol::read_frame(&mut stream, 1 << 20, &mut |_| None).unwrap();
    assert_eq!(payload[0], protocol::BINARY_UNIVERSE_MARKER, "v2 dump must travel binary");
    let value = codec::decode_value(&payload[1..]).unwrap();
    drop(stream);

    // the decoded universe re-serializes to exactly the v1 JSON
    let mut v1 = Client::connect_json(addr).unwrap();
    let mut v2 = Client::connect(addr).unwrap();
    assert!(v2.is_binary());
    let json = v2.dump_universe().unwrap();
    assert_eq!(json, v1.dump_universe().unwrap(), "codecs must agree byte-for-byte");
    assert_eq!(serde_json::to_string(&value).unwrap(), json);
    handle.shutdown();
}

#[test]
fn v2_handshake_negotiates_binary_universes_in_threaded_mode() {
    v2_handshake_negotiates_binary_universes(ServeMode::Threaded);
}

#[test]
fn v2_handshake_negotiates_binary_universes_in_event_mode() {
    v2_handshake_negotiates_binary_universes(ServeMode::Event);
}

/// The frame cap squeezes out a JSON dump but not the binary one: a v1
/// session degrades to `E-TOO-LARGE` (hinting at the binary codec and
/// surviving), while a v2 session retries nothing — its dump simply fits.
fn oversized_json_universe_fits_in_binary(mode: ServeMode) {
    const MAX: u32 = 8192;
    // one long atom repeated across rows: the codec interns it once,
    // JSON repeats it 200 times
    let mut src = String::new();
    for k in 0..200 {
        src.push_str(&format!(
            "?.db.big+(.k={k}, .pad=abcdefghijabcdefghijabcdefghijabcdefghijabcdefghij) ;\n"
        ));
    }
    let mut oracle = Engine::new();
    oracle.execute(&src).unwrap();
    let want = oracle.universe_json().unwrap();
    let binary = codec::encode_value(oracle.store().universe());
    assert!(
        want.len() > MAX as usize,
        "precondition: JSON dump ({}B) must exceed the cap",
        want.len()
    );
    assert!(
        binary.len() + 1 < MAX as usize,
        "precondition: binary dump ({}B) must fit",
        binary.len()
    );

    let handle = serve_engine(
        |e| {
            e.execute(&src).unwrap();
        },
        ServerConfig { mode, max_frame: MAX, ..ServerConfig::default() },
    );
    let addr = handle.local_addr();

    let mut old = Client::connect_json_with(addr, MAX, None).unwrap();
    let err = old.dump_universe().unwrap_err();
    assert_eq!(err.code(), Some(protocol::E_TOO_LARGE), "{err}");
    assert!(err.to_string().contains("binary"), "the error must hint at the binary codec: {err}");
    old.ping().unwrap(); // clean degradation, not a dead session

    let mut new = Client::connect_with(addr, MAX, None).unwrap();
    assert!(new.is_binary());
    assert_eq!(new.dump_universe().unwrap(), want);
    handle.shutdown();
}

#[test]
fn oversized_json_universe_fits_in_binary_in_threaded_mode() {
    oversized_json_universe_fits_in_binary(ServeMode::Threaded);
}

#[test]
fn oversized_json_universe_fits_in_binary_in_event_mode() {
    oversized_json_universe_fits_in_binary(ServeMode::Event);
}

#[test]
fn durable_backend_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("idl-server-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let backend = DurableEngine::open(&dir).unwrap();
    let handle = serve(Box::new(backend), ServerConfig::default()).unwrap();
    {
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.update("?.db.r+(.a=1)").unwrap();
        client.update("?.db.r+(.a=2)").unwrap();
        assert!(client.query("?.db.r(.a=2)").unwrap().is_true());
    }
    handle.shutdown();

    // reopen the directory: both logged updates replay
    let mut reopened = DurableEngine::open(&dir).unwrap();
    assert_eq!(reopened.query("?.db.r(.a=X)").unwrap().len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paged_backend_serves_and_reports_pool_stats_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("idl-server-paged-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let open = |dir: &std::path::Path| {
        DurableEngine::open_with_vfs(
            dir.to_path_buf(),
            Arc::new(idl::RealVfs::new()),
            EngineOptions::builder()
                .storage(idl::StorageSpec::Paged { pool_pages: 8 })
                .durability(),
            |_| Ok(()),
        )
        .unwrap()
    };
    let handle = serve(Box::new(open(&dir)), ServerConfig::default()).unwrap();
    {
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for k in 0..4 {
            client.update(&format!("?.db.r+(.a={k})")).unwrap();
        }
        // the Stats frame carries the paged backend's telemetry as the
        // optional `storage` field
        let reply = client.stats().unwrap();
        let storage = reply.storage.expect("durable backend reports storage stats");
        assert_eq!(storage.backend, "paged:8");
        let pool = storage.pool.expect("paged backend reports pool stats");
        assert_eq!(pool.capacity, 8);
    }
    handle.shutdown();

    // checkpoint into the page file, then serve the recovered state
    open(&dir).checkpoint().unwrap();
    let handle = serve(Box::new(open(&dir)), ServerConfig::default()).unwrap();
    {
        let mut client = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(client.query("?.db.r(.a=X)").unwrap().len(), 4);
        let storage = client.stats().unwrap().storage.expect("storage stats after recovery");
        assert!(storage.pages > 0, "page file materialised: {storage:?}");
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_durable_backend_answers_with_clean_error_frames() {
    // fault-free probe run to find the op index of the second update's
    // log append (same technique as the crash battery)
    let target = {
        let probe = Arc::new(SimVfs::new(FaultPlan::none(17)));
        let v: Arc<dyn Vfs> = Arc::clone(&probe) as Arc<dyn Vfs>;
        let mut p = DurableEngine::open_with_vfs(
            "/served",
            v,
            EngineOptions::builder().durability(),
            |_| Ok(()),
        )
        .unwrap();
        p.update("?.db.r+(.a=1)").unwrap();
        probe.op_count() + 1
    };
    let vfs = Arc::new(SimVfs::new(FaultPlan::none(17).with_enospc_at(target)));
    let v: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
    let backend =
        DurableEngine::open_with_vfs("/served", v, EngineOptions::builder().durability(), |_| {
            Ok(())
        })
        .unwrap();

    let handle = serve(Box::new(backend), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.update("?.db.r+(.a=1)").unwrap();

    // the armed fault fires on this append: the update fails cleanly …
    let err = client.update("?.db.r+(.a=2)").unwrap_err();
    assert!(err.code().is_some(), "expected an engine error frame, got {err}");

    // … the engine is now poisoned: writes report E-POISONED …
    let err = client.update("?.db.r+(.a=3)").unwrap_err();
    assert_eq!(err.code(), Some("E-POISONED"), "{err}");

    // … and reads keep serving the last acknowledged snapshot.
    assert!(client.query("?.db.r(.a=1)").unwrap().is_true());
    assert!(!client.query("?.db.r(.a=2)").unwrap().is_true());
    client.ping().unwrap();

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.sessions_active, 0);
    assert!(final_stats.errors >= 2);
}
